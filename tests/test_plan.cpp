// Partition-planner tests: block shapes of the three schemes, the exact
// Table 1/2 traffic closed forms, and the recursive reordering invariants.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "analysis/levels.hpp"
#include "common/prefix.hpp"
#include "core/plan.hpp"
#include "gen/generators.hpp"
#include "sparse/permute.hpp"
#include "sparse/triangular.hpp"

namespace blocktri {
namespace {

TEST(Plan, UniformBoundaries) {
  EXPECT_EQ(uniform_boundaries(10, 4), (std::vector<index_t>{0, 2, 5, 7, 10}));
  EXPECT_EQ(uniform_boundaries(9, 3), (std::vector<index_t>{0, 3, 6, 9}));
  EXPECT_EQ(uniform_boundaries(5, 1), (std::vector<index_t>{0, 5}));
  EXPECT_EQ(uniform_boundaries(3, 5).size(), 6u);  // more segs than rows
}

TEST(Plan, ColumnSchemeShape) {
  const auto p = plan_column(100, 4);
  EXPECT_EQ(p.num_tri_blocks(), 4);
  ASSERT_EQ(p.squares.size(), 3u);
  // Square si: rows below segment si, columns of segment si (Fig. 2a).
  EXPECT_EQ(p.squares[0].r0, 25);
  EXPECT_EQ(p.squares[0].r1, 100);
  EXPECT_EQ(p.squares[0].c0, 0);
  EXPECT_EQ(p.squares[0].c1, 25);
  // Execution order: T0 S0 T1 S1 T2 S2 T3.
  ASSERT_EQ(p.steps.size(), 7u);
  EXPECT_EQ(p.steps[0].kind, ExecStep::Kind::kTri);
  EXPECT_EQ(p.steps[1].kind, ExecStep::Kind::kSquare);
  EXPECT_EQ(p.steps[6].kind, ExecStep::Kind::kTri);
}

TEST(Plan, RowSchemeShape) {
  const auto p = plan_row(100, 4);
  EXPECT_EQ(p.num_tri_blocks(), 4);
  ASSERT_EQ(p.squares.size(), 3u);
  // Square si: rows of segment si+1, all columns before it (Fig. 2b).
  EXPECT_EQ(p.squares[0].r0, 25);
  EXPECT_EQ(p.squares[0].r1, 50);
  EXPECT_EQ(p.squares[0].c0, 0);
  EXPECT_EQ(p.squares[0].c1, 25);
  // Execution order: T0 S0 T1 S1 T2 S2 T3 (square before its triangle).
  ASSERT_EQ(p.steps.size(), 7u);
  EXPECT_EQ(p.steps[1].kind, ExecStep::Kind::kSquare);
  EXPECT_EQ(p.steps[2].kind, ExecStep::Kind::kTri);
}

// Tables 1 and 2 of the paper: closed forms for the dense-model traffic with
// nseg = 2^x triangular parts. We check the published cells exactly.
struct TrafficCase {
  index_t parts;
  double col_b, row_b, rec_b;  // Table 1, in units of n
  double col_x, row_x, rec_x;  // Table 2, in units of n
};

class TrafficTables : public ::testing::TestWithParam<TrafficCase> {};

TEST_P(TrafficTables, MatchPaperFormulas) {
  const auto c = GetParam();
  // n must be divisible by parts so segment boundaries are exact.
  const index_t n = 65536 * 4;

  const auto pc = plan_column(n, c.parts);
  const auto pr = plan_row(n, c.parts);
  EXPECT_DOUBLE_EQ(static_cast<double>(pc.b_items_updated()) / n, c.col_b);
  EXPECT_DOUBLE_EQ(static_cast<double>(pr.b_items_updated()) / n, c.row_b);
  EXPECT_DOUBLE_EQ(static_cast<double>(pc.x_items_loaded()) / n, c.col_x);
  EXPECT_DOUBLE_EQ(static_cast<double>(pr.x_items_loaded()) / n, c.row_x);

  // Recursive plan with exactly log2(parts) depth: force splitting by
  // disabling the stop rule relative to n.
  PlannerOptions opt;
  opt.reorder = false;
  opt.stop_rows = n / c.parts / 2;
  opt.max_depth = static_cast<int>(std::lround(std::log2(c.parts)));
  Csr<double> permuted;
  const auto L = gen::diagonal(n, 1);  // structure is irrelevant for traffic
  const auto prc = plan_recursive(L, opt, &permuted);
  EXPECT_EQ(prc.num_tri_blocks(), c.parts);
  EXPECT_DOUBLE_EQ(static_cast<double>(prc.b_items_updated()) / n, c.rec_b);
  EXPECT_DOUBLE_EQ(static_cast<double>(prc.x_items_loaded()) / n, c.rec_x);
}

INSTANTIATE_TEST_SUITE_P(
    PaperCells, TrafficTables,
    ::testing::Values(
        // parts, col_b, row_b, rec_b, col_x, row_x, rec_x (Tables 1-2).
        TrafficCase{4, 2.5, 1.75, 2.0, 0.75, 1.5, 1.0},
        TrafficCase{16, 8.5, 1.9375, 3.0, 0.9375, 7.5, 2.0},
        TrafficCase{256, 128.5, 2.0 - 1.0 / 256, 5.0, 1.0 - 1.0 / 256, 127.5,
                    4.0}),
    [](const ::testing::TestParamInfo<TrafficCase>& info) {
      return "parts" + std::to_string(info.param.parts);
    });

PlannerOptions small_opts(index_t stop_rows, bool reorder = true) {
  PlannerOptions o;
  o.stop_rows = stop_rows;
  o.reorder = reorder;
  return o;
}

TEST(Plan, RecursiveBoundsPartitionAndStepsInterleave) {
  const auto L = gen::kkt_structure(2000, 9, 3.0, 3);
  Csr<double> permuted;
  const auto p = plan_recursive(L, small_opts(200), &permuted);

  // Bounds ascend from 0 to n.
  EXPECT_EQ(p.tri_bounds.front(), 0);
  EXPECT_EQ(p.tri_bounds.back(), 2000);
  for (std::size_t i = 1; i < p.tri_bounds.size(); ++i)
    EXPECT_LT(p.tri_bounds[i - 1], p.tri_bounds[i]);

  // Steps: in-order traversal => tri, square, tri, square, ..., tri; and
  // every tri/square index appears exactly once.
  ASSERT_EQ(p.steps.size(), 2 * p.squares.size() + 1 +
                                (static_cast<std::size_t>(p.num_tri_blocks()) -
                                 p.squares.size() - 1));
  std::set<index_t> tris, sqs;
  for (std::size_t s = 0; s < p.steps.size(); ++s) {
    if (p.steps[s].kind == ExecStep::Kind::kTri)
      EXPECT_TRUE(tris.insert(p.steps[s].index).second);
    else
      EXPECT_TRUE(sqs.insert(p.steps[s].index).second);
  }
  EXPECT_EQ(static_cast<index_t>(tris.size()), p.num_tri_blocks());
  EXPECT_EQ(sqs.size(), p.squares.size());
  // First and last steps are triangles.
  EXPECT_EQ(p.steps.front().kind, ExecStep::Kind::kTri);
  EXPECT_EQ(p.steps.back().kind, ExecStep::Kind::kTri);
}

TEST(Plan, SquaresTileTheStrictLowerRegionOfLeafComplement) {
  // For a recursive plan, the union of tri diagonal blocks and squares must
  // cover every nonzero: check on a dense lower triangle by nnz accounting.
  const index_t n = 512;
  const auto L = gen::dense_lower(n, 1.0, 5);  // fully dense lower triangle
  Csr<double> permuted;
  const auto p = plan_recursive(L, small_opts(64, false), &permuted);
  offset_t covered = 0;
  for (index_t t = 0; t < p.num_tri_blocks(); ++t) {
    const index_t r0 = p.tri_bounds[static_cast<std::size_t>(t)];
    const index_t r1 = p.tri_bounds[static_cast<std::size_t>(t) + 1];
    covered += count_block_nnz(permuted, r0, r1, r0, r1);
  }
  for (const auto& sq : p.squares)
    covered += count_block_nnz(permuted, sq.r0, sq.r1, sq.c0, sq.c1);
  EXPECT_EQ(covered, L.nnz());
}

TEST(Plan, StopRuleBoundsLeafSize) {
  const auto L = gen::banded(4096, 8, 2.0, 7);
  Csr<double> permuted;
  const auto p = plan_recursive(L, small_opts(512), &permuted);
  for (index_t t = 0; t < p.num_tri_blocks(); ++t) {
    const index_t rows = p.tri_bounds[static_cast<std::size_t>(t) + 1] -
                         p.tri_bounds[static_cast<std::size_t>(t)];
    EXPECT_GE(rows, 512);          // no leaf below the saturation size
    EXPECT_LT(rows, 2 * 512 + 2);  // and every splittable leaf was split
  }
}

TEST(Plan, MaxDepthCapsRecursion) {
  const auto L = gen::banded(4096, 8, 2.0, 7);
  Csr<double> permuted;
  PlannerOptions o = small_opts(2);
  o.max_depth = 3;
  const auto p = plan_recursive(L, o, &permuted);
  EXPECT_EQ(p.num_tri_blocks(), 8);  // 2^3 leaves
  EXPECT_EQ(p.depth_used, 3);
}

TEST(Plan, ReorderingPreservesSystemAndConcentratesNnz) {
  const auto L = gen::power_law(3000, 2.0, 256, 5.0, 11);
  Csr<double> permuted;
  const auto p = plan_recursive(L, small_opts(400, true), &permuted);

  EXPECT_TRUE(is_permutation_of_iota(p.new_of_old));
  EXPECT_TRUE(is_lower_triangular_nonsingular(permuted));
  // The permuted matrix is exactly P L P^T.
  EXPECT_TRUE(equals(permuted, permute_symmetric(L, p.new_of_old)));

  // §3.3's claim: the reordering moves nonzeros into the square parts.
  Csr<double> unordered;
  const auto p0 = plan_recursive(L, small_opts(400, false), &unordered);
  auto nnz_squares = [](const BlockPlan& plan, const Csr<double>& m) {
    offset_t total = 0;
    for (const auto& sq : plan.squares)
      total += count_block_nnz(m, sq.r0, sq.r1, sq.c0, sq.c1);
    return total;
  };
  EXPECT_GT(nnz_squares(p, permuted), nnz_squares(p0, unordered));
}

TEST(Plan, ReorderedLeavesAreLevelOrdered) {
  const auto L = gen::trace_network(1500, 11, 1.8, 0.45, 13);
  Csr<double> permuted;
  const auto p = plan_recursive(L, small_opts(150, true), &permuted);
  // Within each leaf, rows must be sorted by leaf-local level.
  for (index_t t = 0; t < p.num_tri_blocks(); ++t) {
    const index_t r0 = p.tri_bounds[static_cast<std::size_t>(t)];
    const index_t r1 = p.tri_bounds[static_cast<std::size_t>(t) + 1];
    const auto blk = extract_block(permuted, r0, r1, r0, r1);
    const auto ls = compute_level_sets(blk);
    for (index_t i = 1; i < blk.nrows; ++i)
      EXPECT_LE(ls.level_of[static_cast<std::size_t>(i - 1)],
                ls.level_of[static_cast<std::size_t>(i)])
          << "leaf " << t;
  }
}

TEST(Plan, HostCountersPopulatedOnlyWhenReordering) {
  const auto L = gen::grid2d(40, 40, 17);
  Csr<double> permuted;
  const auto with = plan_recursive(L, small_opts(200, true), &permuted);
  EXPECT_GT(with.host_ops, 0);
  EXPECT_GT(with.host_bytes, 0);
  const auto without = plan_recursive(L, small_opts(200, false), &permuted);
  EXPECT_EQ(without.host_ops, 0);
}

TEST(Plan, TinyMatrixSingleLeaf) {
  const auto L = gen::diagonal(3, 1);
  Csr<double> permuted;
  const auto p = plan_recursive(L, small_opts(512), &permuted);
  EXPECT_EQ(p.num_tri_blocks(), 1);
  EXPECT_TRUE(p.squares.empty());
  ASSERT_EQ(p.steps.size(), 1u);
}

// Regression: nseg > n used to replicate boundary values, planning empty
// triangular segments and zero-area squares. Both planners now clamp nseg to
// max(1, min(nseg, n)).
class PlanNsegClamp : public ::testing::TestWithParam<index_t> {};

TEST_P(PlanNsegClamp, ColumnSchemeSegmentsNeverEmpty) {
  const index_t n = GetParam();
  const auto p = plan_column(n, 4);
  const auto expected_segs = std::max<index_t>(1, std::min<index_t>(4, n));
  EXPECT_EQ(p.num_tri_blocks(), expected_segs);
  ASSERT_EQ(p.tri_bounds.size(), static_cast<std::size_t>(expected_segs) + 1);
  for (std::size_t s = 0; s + 1 < p.tri_bounds.size(); ++s) {
    if (n > 0) EXPECT_LT(p.tri_bounds[s], p.tri_bounds[s + 1]);
  }
  for (const auto& sq : p.squares) {
    EXPECT_LT(sq.r0, sq.r1);
    EXPECT_LT(sq.c0, sq.c1);
  }
}

TEST_P(PlanNsegClamp, RowSchemeSegmentsNeverEmpty) {
  const index_t n = GetParam();
  const auto p = plan_row(n, 4);
  const auto expected_segs = std::max<index_t>(1, std::min<index_t>(4, n));
  EXPECT_EQ(p.num_tri_blocks(), expected_segs);
  ASSERT_EQ(p.tri_bounds.size(), static_cast<std::size_t>(expected_segs) + 1);
  for (std::size_t s = 0; s + 1 < p.tri_bounds.size(); ++s) {
    if (n > 0) EXPECT_LT(p.tri_bounds[s], p.tri_bounds[s + 1]);
  }
  for (const auto& sq : p.squares) {
    EXPECT_LT(sq.r0, sq.r1);
    EXPECT_LT(sq.c0, sq.c1);
  }
}

INSTANTIATE_TEST_SUITE_P(SmallN, PlanNsegClamp,
                         ::testing::Values<index_t>(0, 1, 3),
                         [](const ::testing::TestParamInfo<index_t>& info) {
                           return "n" + std::to_string(info.param);
                         });

TEST(Plan, SchemeNames) {
  EXPECT_EQ(to_string(BlockScheme::kColumn), "column-block");
  EXPECT_EQ(to_string(BlockScheme::kRow), "row-block");
  EXPECT_EQ(to_string(BlockScheme::kRecursive), "recursive-block");
  EXPECT_EQ(to_string(BlockScheme::kHbmc), "hbmc-block");
}

}  // namespace
}  // namespace blocktri
