// Unit tests for src/common: RNG, scans, sorting, permutations, tables, CLI.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <set>
#include <string>

#include "common/cli.hpp"
#include "common/thread_pool.hpp"
#include "common/prefix.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/types.hpp"

namespace blocktri {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformIntRespectsBounds) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-3, 5);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 9u);  // all 9 values hit in 2000 draws
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(4, 4), 4);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(9);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, PowerLawBoundsAndSkew) {
  Rng rng(13);
  std::int64_t ones = 0;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.power_law(2.0, 1000);
    ASSERT_GE(v, 1);
    ASSERT_LE(v, 1000);
    if (v == 1) ++ones;
  }
  // A power law with alpha=2 puts roughly half its mass on k=1.
  EXPECT_GT(ones, 1500);
}

TEST(Rng, GeometricMean) {
  Rng rng(15);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) sum += static_cast<double>(rng.geometric(0.25));
  EXPECT_NEAR(sum / 20000.0, 3.0, 0.25);  // mean (1-p)/p = 3
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.1);
}

TEST(Rng, SampleDistinctIsDistinctAndInRange) {
  Rng rng(19);
  const auto s = rng.sample_distinct(10, 29, 15);
  EXPECT_EQ(s.size(), 15u);
  std::set<std::int64_t> set(s.begin(), s.end());
  EXPECT_EQ(set.size(), 15u);
  for (const auto v : s) {
    EXPECT_GE(v, 10);
    EXPECT_LE(v, 29);
  }
}

TEST(Rng, SampleDistinctFullRange) {
  Rng rng(21);
  const auto s = rng.sample_distinct(0, 9, 10);
  std::set<std::int64_t> set(s.begin(), s.end());
  EXPECT_EQ(set.size(), 10u);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  auto w = v;
  rng.shuffle(w);
  EXPECT_NE(v, w);  // astronomically unlikely to be identity
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Prefix, ExclusiveScan) {
  std::vector<offset_t> v = {3, 1, 4, 1, 0};
  exclusive_scan_in_place(v);
  EXPECT_EQ(v, (std::vector<offset_t>{0, 3, 4, 8, 9}));
}

TEST(Prefix, ExclusiveScanEmpty) {
  std::vector<offset_t> v;
  exclusive_scan_in_place(v);
  EXPECT_TRUE(v.empty());
}

TEST(Prefix, CountingSortIsStable) {
  // Keys with ties; stability means original order within each key.
  const std::vector<index_t> keys = {2, 0, 1, 0, 2, 1, 0};
  const auto perm = stable_counting_sort_perm(keys, 3);
  EXPECT_EQ(perm, (std::vector<index_t>{1, 3, 6, 2, 5, 0, 4}));
}

TEST(Prefix, CountingSortRejectsOutOfRange) {
  const std::vector<index_t> keys = {0, 3};
  EXPECT_THROW(stable_counting_sort_perm(keys, 3), Error);
}

TEST(Prefix, InvertPermutationRoundTrip) {
  const std::vector<index_t> perm = {2, 0, 3, 1};
  const auto inv = invert_permutation(perm);
  EXPECT_EQ(inv, (std::vector<index_t>{1, 3, 0, 2}));
  EXPECT_EQ(invert_permutation(inv), perm);
}

TEST(Prefix, IsPermutationOfIota) {
  EXPECT_TRUE(is_permutation_of_iota({1, 0, 2}));
  EXPECT_FALSE(is_permutation_of_iota({1, 1, 2}));
  EXPECT_FALSE(is_permutation_of_iota({0, 3, 1}));
  EXPECT_TRUE(is_permutation_of_iota({}));
}

TEST(Table, AlignsAndCounts) {
  TextTable t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "22"});
  EXPECT_EQ(t.rows(), 2u);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name "), std::string::npos);
  EXPECT_NE(s.find("| long-name |"), std::string::npos);
}

TEST(Table, RejectsRaggedRows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Format, Fixed) {
  EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_fixed(-0.5, 1), "-0.5");
}

TEST(Format, Count) {
  EXPECT_EQ(fmt_count(0), "0");
  EXPECT_EQ(fmt_count(999), "999");
  EXPECT_EQ(fmt_count(1234567), "1,234,567");
  EXPECT_EQ(fmt_count(-1234), "-1,234");
}

TEST(Format, Compact) {
  EXPECT_EQ(fmt_compact(0.0), "0");
  EXPECT_NE(fmt_compact(1.23e-7).find("e"), std::string::npos);
}

TEST(Cli, ParsesFlagsAndPositional) {
  const char* argv[] = {"prog", "--n=42", "--verbose", "input.mtx",
                        "--ratio=0.5"};
  Cli cli(5, argv);
  EXPECT_EQ(cli.get_int("n", 0), 42);
  EXPECT_TRUE(cli.get_bool("verbose", false));
  EXPECT_DOUBLE_EQ(cli.get_double("ratio", 0.0), 0.5);
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "input.mtx");
  EXPECT_TRUE(cli.unused().empty());
}

TEST(Cli, DefaultsAndUnused) {
  const char* argv[] = {"prog", "--typo=1"};
  Cli cli(2, argv);
  EXPECT_EQ(cli.get_int("n", 7), 7);
  const auto unused = cli.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(Cli, RejectsMalformedNumbers) {
  const char* argv[] = {"prog", "--n=12x"};
  Cli cli(2, argv);
  EXPECT_THROW(cli.get_int("n", 0), Error);
}

TEST(Check, ThrowsWithContext) {
  try {
    BLOCKTRI_CHECK_MSG(1 == 2, "context message");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("context message"),
              std::string::npos);
    // Checks are rebased on Status: the carried code is kInternal.
    EXPECT_EQ(e.status().code(), StatusCode::kInternal);
  }
}

TEST(Status, DefaultIsOk) {
  const Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.location(), -1);
  EXPECT_EQ(st.to_string(), "ok");
  EXPECT_TRUE(Status::Ok().ok());
}

TEST(Status, ToStringCarriesCodeAndLocation) {
  const Status row_err(StatusCode::kZeroPivot, "diagonal of row 7 is zero", 7);
  EXPECT_FALSE(row_err.ok());
  EXPECT_EQ(row_err.to_string(),
            "[zero-pivot @ row 7] diagonal of row 7 is zero");
  const Status line_err(StatusCode::kParseError, "bad entry (line 12)", 12);
  EXPECT_EQ(line_err.to_string(), "[parse-error @ line 12] bad entry (line 12)");
  const Status no_loc(StatusCode::kResidualTooLarge, "residual 1e-3");
  EXPECT_EQ(no_loc.to_string(), "[residual-too-large] residual 1e-3");
}

TEST(Status, CodeNamesAreStable) {
  EXPECT_STREQ(status_code_name(StatusCode::kOk), "ok");
  EXPECT_STREQ(status_code_name(StatusCode::kBadFormat), "bad-format");
  EXPECT_STREQ(status_code_name(StatusCode::kNotTriangular), "not-triangular");
  EXPECT_STREQ(status_code_name(StatusCode::kSingularRow), "singular-row");
  EXPECT_STREQ(status_code_name(StatusCode::kNonFinite), "non-finite");
  EXPECT_STREQ(status_code_name(StatusCode::kNumericalBreakdown),
               "numerical-breakdown");
}

TEST(Status, ThrowIfErrorBridgesToException) {
  EXPECT_NO_THROW(throw_if_error(Status::Ok()));
  try {
    throw_if_error(Status(StatusCode::kSingularRow, "row 3 empty", 3));
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.status().code(), StatusCode::kSingularRow);
    EXPECT_EQ(e.status().location(), 3);
    EXPECT_EQ(std::string(e.what()), e.status().to_string());
  }
}

// --- resolve_threads env hardening (ISSUE 8 satellite) ----------------------

// Sets BLOCKTRI_THREADS for one test body, restoring the prior state on
// scope exit so tests cannot leak environment into each other.
class ScopedThreadsEnv {
 public:
  explicit ScopedThreadsEnv(const char* value) {
    const char* old = std::getenv("BLOCKTRI_THREADS");
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
    if (value != nullptr)
      ::setenv("BLOCKTRI_THREADS", value, 1);
    else
      ::unsetenv("BLOCKTRI_THREADS");
  }
  ~ScopedThreadsEnv() {
    if (had_)
      ::setenv("BLOCKTRI_THREADS", saved_.c_str(), 1);
    else
      ::unsetenv("BLOCKTRI_THREADS");
  }

 private:
  std::string saved_;
  bool had_ = false;
};

TEST(ResolveThreads, ValidEnvOverridesTheRequest) {
  ScopedThreadsEnv env("3");
  EXPECT_EQ(resolve_threads(8), 3);
  EXPECT_EQ(resolve_threads(0), 3);
}

TEST(ResolveThreads, UnsetEnvFallsBackToTheRequest) {
  ScopedThreadsEnv env(nullptr);
  EXPECT_EQ(resolve_threads(8), 8);
  EXPECT_GE(resolve_threads(0), 1);   // 0 = auto-detect, at least one
  EXPECT_EQ(resolve_threads(-4), 1);  // negative requests clamp to one
}

TEST(ResolveThreads, GarbageEnvFallsBackToTheRequest) {
  for (const char* bad : {"", "abc", "4x", "4 2", "2.5", "--3", "+", " ",
                          "0x10", "1e3"}) {
    ScopedThreadsEnv env(bad);
    EXPECT_EQ(resolve_threads(8), 8) << "env was '" << bad << "'";
  }
}

TEST(ResolveThreads, NonPositiveEnvFallsBackToTheRequest) {
  for (const char* bad : {"0", "-1", "-4096"}) {
    ScopedThreadsEnv env(bad);
    EXPECT_EQ(resolve_threads(8), 8) << "env was '" << bad << "'";
  }
}

TEST(ResolveThreads, OverflowingEnvFallsBackInsteadOfWrapping) {
  // Both values saturate or overflow long; neither may wrap into a small
  // positive thread count.
  for (const char* bad :
       {"9223372036854775808", "99999999999999999999999999", "-99999999999"}) {
    ScopedThreadsEnv env(bad);
    EXPECT_EQ(resolve_threads(8), 8) << "env was '" << bad << "'";
  }
}

TEST(ResolveThreads, EnvAboveTheSanityCapFallsBack) {
  ScopedThreadsEnv env("1000000");  // > kMaxResolvedThreads, parses fine
  EXPECT_EQ(resolve_threads(8), 8);
  ScopedThreadsEnv env2("4096");  // the cap itself is accepted
  EXPECT_EQ(resolve_threads(8), 4096);
}

TEST(ResolveThreads, TrailingBlanksAreTolerated) {
  ScopedThreadsEnv env("6  \t");
  EXPECT_EQ(resolve_threads(8), 6);
}

}  // namespace
}  // namespace blocktri
