// Adaptive kernel selection tests: every branch of Algorithm 7, including
// the published threshold boundaries.
#include <gtest/gtest.h>

#include "core/adaptive.hpp"

namespace blocktri {
namespace {

TriangularFeatures tri_feat(double nnz_per_row_total, index_t nlevels) {
  TriangularFeatures f;
  f.base.nrows = 1000;
  f.base.nnz_per_row = nnz_per_row_total;  // includes the diagonal
  f.nlevels = nlevels;
  return f;
}

MatrixFeatures sq_feat(index_t nrows, offset_t nnz, double empty_ratio) {
  MatrixFeatures f;
  f.nrows = nrows;
  f.nnz = nnz;
  f.nnz_per_row = static_cast<double>(nnz) / nrows;
  f.empty_ratio = empty_ratio;
  return f;
}

const ThresholdTable kT{};

TEST(AdaptiveTri, DiagonalBlockIsCompletelyParallel) {
  EXPECT_EQ(select_tri_kernel(tri_feat(1.0, 1), kT),
            TriKernelKind::kCompletelyParallel);
}

TEST(AdaptiveTri, VeryDeepBlocksGoToCusparse) {
  EXPECT_EQ(select_tri_kernel(tri_feat(5.0, 20001), kT),
            TriKernelKind::kCusparseLike);
  // Boundary: exactly 20000 is NOT cusparse.
  EXPECT_NE(select_tri_kernel(tri_feat(5.0, 20000), kT),
            TriKernelKind::kCusparseLike);
}

TEST(AdaptiveTri, ShortRowsFewLevelsGoToLevelSet) {
  // nnz/row <= 15 off-diagonal and nlevels <= 20.
  EXPECT_EQ(select_tri_kernel(tri_feat(16.0, 20), kT),
            TriKernelKind::kLevelSet);
  EXPECT_EQ(select_tri_kernel(tri_feat(2.0, 5), kT), TriKernelKind::kLevelSet);
  // Just past either threshold -> sync-free.
  EXPECT_EQ(select_tri_kernel(tri_feat(17.5, 20), kT),
            TriKernelKind::kSyncFree);
  EXPECT_EQ(select_tri_kernel(tri_feat(16.0, 21), kT),
            TriKernelKind::kSyncFree);
}

TEST(AdaptiveTri, UnitRowChainGetsLevelSetUpTo100Levels) {
  // nnz/row == 1 off-diagonal (2.0 with the diagonal) and nlevels <= 100.
  EXPECT_EQ(select_tri_kernel(tri_feat(2.0, 100), kT),
            TriKernelKind::kLevelSet);
  EXPECT_EQ(select_tri_kernel(tri_feat(2.0, 101), kT),
            TriKernelKind::kSyncFree);
}

TEST(AdaptiveTri, MiddleGroundIsSyncFree) {
  EXPECT_EQ(select_tri_kernel(tri_feat(40.0, 500), kT),
            TriKernelKind::kSyncFree);
}

TEST(AdaptiveSq, ShortRowsLowEmpty) {
  EXPECT_EQ(select_square_kernel(sq_feat(1000, 5000, 0.0), kT),
            SpmvKernelKind::kScalarCsr);
  EXPECT_EQ(select_square_kernel(sq_feat(1000, 5000, 0.5), kT),
            SpmvKernelKind::kScalarCsr);  // boundary: 50% still CSR
}

TEST(AdaptiveSq, ShortRowsHighEmpty) {
  EXPECT_EQ(select_square_kernel(sq_feat(1000, 2000, 0.51), kT),
            SpmvKernelKind::kScalarDcsr);
  EXPECT_EQ(select_square_kernel(sq_feat(1000, 100, 0.95), kT),
            SpmvKernelKind::kScalarDcsr);
}

TEST(AdaptiveSq, LongRowsLowEmpty) {
  EXPECT_EQ(select_square_kernel(sq_feat(1000, 20000, 0.0), kT),
            SpmvKernelKind::kVectorCsr);
  EXPECT_EQ(select_square_kernel(sq_feat(1000, 20000, 0.15), kT),
            SpmvKernelKind::kVectorCsr);  // boundary: 15% still CSR
}

TEST(AdaptiveSq, LongRowsHighEmpty) {
  // nnz/row over non-empty rows: 20000 / (1000*0.2) = 100 > 12.
  EXPECT_EQ(select_square_kernel(sq_feat(1000, 20000, 0.8), kT),
            SpmvKernelKind::kVectorDcsr);
}

TEST(AdaptiveSq, NnzPerRowUsesNonEmptyRows) {
  // 13000 nnz over 1000 rows looks "long" on average, but if all rows are
  // non-empty it is 13 > 12 -> vector; with 60% empty rows the active rows
  // average 32.5 -> still vector, but DCSR.
  EXPECT_EQ(select_square_kernel(sq_feat(1000, 13000, 0.0), kT),
            SpmvKernelKind::kVectorCsr);
  EXPECT_EQ(select_square_kernel(sq_feat(1000, 13000, 0.6), kT),
            SpmvKernelKind::kVectorDcsr);
  // Conversely 8 nnz/row over all rows but concentrated on 40% of rows is
  // 20 per active row -> vector-DCSR, not scalar.
  EXPECT_EQ(select_square_kernel(sq_feat(1000, 8000, 0.6), kT),
            SpmvKernelKind::kVectorDcsr);
}

TEST(AdaptiveSq, CustomThresholds) {
  ThresholdTable t;
  t.sq_nnz_row_scalar = 100.0;  // everything is "short rows" now
  EXPECT_EQ(select_square_kernel(sq_feat(1000, 20000, 0.0), t),
            SpmvKernelKind::kScalarCsr);
}

TEST(AdaptiveTri, CustomThresholds) {
  ThresholdTable t;
  t.tri_nlevels_cusparse = 10;
  EXPECT_EQ(select_tri_kernel(tri_feat(5.0, 11), t),
            TriKernelKind::kCusparseLike);
}

// Exact-equality boundary pins for every ThresholdTable constant (ISSUE 7
// satellite): the tuner's search treats the heuristic as one candidate among
// many, so the heuristic itself must stay frozen at the published fence
// posts. Each case sits *on* a threshold; the off-by-one cases around them
// are covered above.
TEST(AdaptiveBoundary, TriThresholdEqualityIsInclusive) {
  const ThresholdTable t{};
  // nnz/row (off-diagonal) == 15 exactly, i.e. 16.0 with the diagonal:
  // still level-set at nlevels == 20.
  EXPECT_EQ(select_tri_kernel(tri_feat(16.0, 20), t),
            TriKernelKind::kLevelSet);
  // nlevels == 20 exactly with denser rows: sync-free (rows too long).
  EXPECT_EQ(select_tri_kernel(tri_feat(16.0 + 1e-9, 20), t),
            TriKernelKind::kSyncFree);
  // Unit off-diagonal rows at nlevels == 100 exactly: still level-set.
  EXPECT_EQ(select_tri_kernel(tri_feat(2.0, 100), t),
            TriKernelKind::kLevelSet);
  // nlevels == 20000 exactly: NOT cusparse-like (strict >), and with long
  // rows that leaves sync-free.
  EXPECT_EQ(select_tri_kernel(tri_feat(40.0, 20000), t),
            TriKernelKind::kSyncFree);
  EXPECT_EQ(select_tri_kernel(tri_feat(40.0, 20001), t),
            TriKernelKind::kCusparseLike);
}

TEST(AdaptiveBoundary, SquareEmptyRatioEqualityStaysCsr) {
  const ThresholdTable t{};
  // emptyratio == 0.50 exactly on short rows: CSR (strict > for DCSR).
  EXPECT_EQ(select_square_kernel(sq_feat(1000, 5000, 0.50), t),
            SpmvKernelKind::kScalarCsr);
  EXPECT_EQ(select_square_kernel(sq_feat(1000, 5000, 0.50 + 1e-9), t),
            SpmvKernelKind::kScalarDcsr);
  // emptyratio == 0.15 exactly on long rows: CSR.
  EXPECT_EQ(select_square_kernel(sq_feat(1000, 20000, 0.15), t),
            SpmvKernelKind::kVectorCsr);
  EXPECT_EQ(select_square_kernel(sq_feat(1000, 20000, 0.15 + 1e-9), t),
            SpmvKernelKind::kVectorDcsr);
  // nnz per active row == 12 exactly: scalar (inclusive <=).
  EXPECT_EQ(select_square_kernel(sq_feat(1000, 12000, 0.0), t),
            SpmvKernelKind::kScalarCsr);
  EXPECT_EQ(select_square_kernel(sq_feat(1000, 12001, 0.0), t),
            SpmvKernelKind::kVectorCsr);
}

TEST(Adaptive, KindNames) {
  EXPECT_EQ(to_string(TriKernelKind::kCompletelyParallel),
            "completely-parallel");
  EXPECT_EQ(to_string(TriKernelKind::kLevelSet), "level-set");
  EXPECT_EQ(to_string(TriKernelKind::kSyncFree), "sync-free");
  EXPECT_EQ(to_string(TriKernelKind::kCusparseLike), "cusparse-like");
}

}  // namespace
}  // namespace blocktri
