// Tests for the input-sanitization pass: every policy knob, the typed
// rejection paths, and the repair report.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "sparse/convert.hpp"
#include "sparse/dense.hpp"
#include "sparse/sanitize.hpp"
#include "sparse/triangular.hpp"

namespace blocktri {
namespace {

Coo<double> messy_coo() {
  // 3x3 with a duplicate (1,0), an explicit zero (2,1), an upper entry
  // (0,2) and a missing diagonal on row 2.
  Coo<double> coo;
  coo.nrows = coo.ncols = 3;
  auto put = [&coo](index_t r, index_t c, double v) {
    coo.row.push_back(r);
    coo.col.push_back(c);
    coo.val.push_back(v);
  };
  put(1, 0, 2.0);
  put(0, 0, 4.0);
  put(0, 2, 7.0);
  put(1, 0, 3.0);  // duplicate of (1,0)
  put(2, 1, 0.0);  // explicit zero
  put(1, 1, 5.0);
  return coo;
}

TEST(Sanitize, DefaultsCoalesceAndDropZeros) {
  Csr<double> out;
  SanitizeReport rep;
  ASSERT_TRUE(sanitize(messy_coo(), SanitizePolicy{}, &out, &rep).ok());
  validate(out);
  EXPECT_EQ(rep.duplicates_coalesced, 1);
  EXPECT_EQ(rep.zeros_dropped, 1);
  EXPECT_EQ(rep.upper_dropped, 0);
  EXPECT_EQ(rep.diagonals_filled, 0);
  EXPECT_TRUE(rep.changed());
  const auto d = to_dense(out);
  EXPECT_DOUBLE_EQ(d[1 * 3 + 0], 5.0);  // 2 + 3 summed
  EXPECT_DOUBLE_EQ(d[0 * 3 + 2], 7.0);  // upper kept by default
  EXPECT_DOUBLE_EQ(d[2 * 3 + 1], 0.0);  // zero dropped
}

TEST(Sanitize, StripUpperAndFillDiagonalYieldSolvableTriangle) {
  SanitizePolicy policy;
  policy.strip_upper = true;
  policy.fill_missing_diagonal = true;
  policy.diag_fill = 1.5;
  Csr<double> out;
  SanitizeReport rep;
  ASSERT_TRUE(sanitize(messy_coo(), policy, &out, &rep).ok());
  validate(out);
  EXPECT_EQ(rep.upper_dropped, 1);
  EXPECT_EQ(rep.diagonals_filled, 1);  // row 2 (its only entry was a zero)
  EXPECT_TRUE(check_lower_triangular(out).ok());
  const auto d = to_dense(out);
  EXPECT_DOUBLE_EQ(d[2 * 3 + 2], 1.5);
  EXPECT_NE(rep.summary().find("filled diagonals: 1"), std::string::npos);
}

TEST(Sanitize, FilledDiagonalStaysSortedBeforeUpperEntries) {
  // Row 0 has entries in columns 1 and 2 but no diagonal; with upper entries
  // kept, the filled (0,0) must land before them in the sorted CSR.
  Coo<double> coo;
  coo.nrows = coo.ncols = 3;
  coo.row = {0, 0, 1, 2};
  coo.col = {2, 1, 1, 2};
  coo.val = {3.0, 4.0, 1.0, 1.0};
  SanitizePolicy policy;
  policy.fill_missing_diagonal = true;
  Csr<double> out;
  ASSERT_TRUE(sanitize(coo, policy, &out, nullptr).ok());
  validate(out);  // throws on unsorted rows
  EXPECT_EQ(out.col_idx[0], 0);
  EXPECT_DOUBLE_EQ(out.val[0], 1.0);
}

TEST(Sanitize, DuplicatesAreAnErrorWhenCoalescingOff) {
  SanitizePolicy policy;
  policy.coalesce_duplicates = false;
  Csr<double> out;
  const Status st = sanitize(messy_coo(), policy, &out, nullptr);
  EXPECT_EQ(st.code(), StatusCode::kBadFormat);
  EXPECT_NE(st.message().find("duplicate"), std::string::npos);
}

TEST(Sanitize, OutOfBoundsIndexIsTyped) {
  Coo<double> coo;
  coo.nrows = coo.ncols = 2;
  coo.row = {0, 3};
  coo.col = {0, 0};
  coo.val = {1.0, 1.0};
  Csr<double> out;
  EXPECT_EQ(sanitize(coo, SanitizePolicy{}, &out, nullptr).code(),
            StatusCode::kOutOfBounds);
  coo.row = {0, -1};
  EXPECT_EQ(sanitize(coo, SanitizePolicy{}, &out, nullptr).code(),
            StatusCode::kOutOfBounds);
}

TEST(Sanitize, NonFinitePolicies) {
  Coo<double> coo;
  coo.nrows = coo.ncols = 2;
  coo.row = {0, 1, 1};
  coo.col = {0, 0, 1};
  coo.val = {1.0, std::numeric_limits<double>::quiet_NaN(), 2.0};

  Csr<double> out;
  SanitizePolicy policy;  // default: reject
  const Status st = sanitize(coo, policy, &out, nullptr);
  EXPECT_EQ(st.code(), StatusCode::kNonFinite);
  EXPECT_EQ(st.location(), 1);

  policy.nonfinite = SanitizePolicy::NonFinite::kDrop;
  SanitizeReport rep;
  ASSERT_TRUE(sanitize(coo, policy, &out, &rep).ok());
  EXPECT_EQ(rep.nonfinite_repaired, 1);
  EXPECT_EQ(out.nnz(), 2);

  policy.nonfinite = SanitizePolicy::NonFinite::kZero;
  policy.drop_explicit_zeros = false;
  ASSERT_TRUE(sanitize(coo, policy, &out, &rep).ok());
  EXPECT_EQ(out.nnz(), 3);
  for (const double v : out.val) EXPECT_TRUE(std::isfinite(v));
}

TEST(Sanitize, EmptyAndAllZeroInputs) {
  Coo<double> empty;
  empty.nrows = empty.ncols = 4;
  Csr<double> out;
  SanitizePolicy policy;
  policy.fill_missing_diagonal = true;
  SanitizeReport rep;
  ASSERT_TRUE(sanitize(empty, policy, &out, &rep).ok());
  validate(out);
  EXPECT_EQ(rep.diagonals_filled, 4);
  EXPECT_TRUE(check_lower_triangular(out).ok());

  EXPECT_FALSE(rep.changed() && rep.summary() == "no changes");
}

TEST(Sanitize, MismatchedArraysRejected) {
  Coo<double> coo;
  coo.nrows = coo.ncols = 2;
  coo.row = {0};
  coo.col = {0, 1};
  coo.val = {1.0};
  Csr<double> out;
  EXPECT_EQ(sanitize(coo, SanitizePolicy{}, &out, nullptr).code(),
            StatusCode::kBadFormat);
}

}  // namespace
}  // namespace blocktri
