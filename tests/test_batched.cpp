// Batched multi-RHS (SpTRSM) tests. The contract under test: solve_many(B, k)
// is BITWISE identical to k independent solve() calls on a threads = 1 solver
// — across every scheme, every forced triangular/SpMV kernel pair, both
// precisions and any thread count (all batched kernels are deterministic; the
// single-RHS syncfree path at threads > 1 is the only racy kernel, which is
// why the reference is always serial). Plus the hardened panel path:
// solve_many_checked verifies every column and degrades a faulty column
// through the fallback ladder without touching its healthy neighbours.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "core/solver.hpp"
#include "gen/generators.hpp"
#include "helpers.hpp"
#include "sptrsv/serial.hpp"

namespace blocktri {
namespace {

using blocktri::testing::default_tol;
using blocktri::testing::test_matrices;
using blocktri::testing::VectorsNear;

template <class T>
typename BlockSolver<T>::Options opts(BlockScheme scheme,
                                      index_t stop_rows = 200,
                                      index_t nseg = 4) {
  typename BlockSolver<T>::Options o;
  o.scheme = scheme;
  o.planner.stop_rows = stop_rows;
  o.planner.nseg = nseg;
  return o;
}

template <class T>
std::vector<T> panel_column(const std::vector<T>& panel, index_t n,
                            index_t c) {
  const auto off = static_cast<std::ptrdiff_t>(c) * n;
  return std::vector<T>(panel.begin() + off, panel.begin() + off + n);
}

/// Bitwise equality (memcmp, so even -0.0 vs +0.0 or NaN payloads differ).
template <class T>
::testing::AssertionResult BitwiseEqual(const std::vector<T>& got,
                                        const std::vector<T>& want) {
  if (got.size() != want.size())
    return ::testing::AssertionFailure()
           << "size mismatch: " << got.size() << " vs " << want.size();
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (std::memcmp(&got[i], &want[i], sizeof(T)) != 0)
      return ::testing::AssertionFailure()
             << "entry " << i << ": got " << static_cast<double>(got[i])
             << ", want " << static_cast<double>(want[i])
             << " (not bitwise equal)";
  }
  return ::testing::AssertionSuccess();
}

/// Asserts solve_many on `solver` equals column-by-column solve() on `ref`
/// (a threads = 1 solver over the same matrix and plan options) bitwise.
template <class T>
void expect_batched_matches(const BlockSolver<T>& solver,
                            const BlockSolver<T>& ref, index_t k,
                            std::uint64_t seed, const std::string& tag) {
  const index_t n = ref.n();
  const auto B = gen::random_rhs<T>(n * k, seed);
  const auto X = solver.solve_many(B, k);
  ASSERT_EQ(X.size(), B.size()) << tag;
  for (index_t c = 0; c < k; ++c) {
    const auto want = ref.solve(panel_column(B, n, c));
    EXPECT_TRUE(BitwiseEqual(panel_column(X, n, c), want))
        << tag << ", column " << c << " of " << k;
  }
}

// --- Scheme x structural family sweep (adaptive selection) -----------------

class BatchedOnMatrix
    : public ::testing::TestWithParam<std::tuple<BlockScheme, int>> {};

TEST_P(BatchedOnMatrix, BitwiseDouble) {
  const auto [scheme, mat_idx] = GetParam();
  const auto tm = test_matrices()[static_cast<std::size_t>(mat_idx)];
  const auto L = tm.build();
  const BlockSolver<double> solver(L, opts<double>(scheme));
  expect_batched_matches(solver, solver, 5, 301, tm.name);
}

TEST_P(BatchedOnMatrix, BitwiseFloat) {
  const auto [scheme, mat_idx] = GetParam();
  const auto tm = test_matrices()[static_cast<std::size_t>(mat_idx)];
  const auto Lf = gen::convert_values<float>(tm.build());
  const BlockSolver<float> solver(Lf, opts<float>(scheme));
  expect_batched_matches(solver, solver, 5, 302, tm.name);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BatchedOnMatrix,
    ::testing::Combine(
        ::testing::Values(BlockScheme::kColumn, BlockScheme::kRow,
                          BlockScheme::kRecursive, BlockScheme::kHbmc),
        ::testing::Range(0, static_cast<int>(test_matrices().size()))),
    [](const ::testing::TestParamInfo<BatchedOnMatrix::ParamType>& info) {
      std::string s = to_string(std::get<0>(info.param));
      std::replace(s.begin(), s.end(), '-', '_');
      return s + "_" +
             test_matrices()[static_cast<std::size_t>(
                                 std::get<1>(info.param))].name;
    });

// --- Forced kernel pairs: every batched tri x SpMV family ------------------

TEST(Batched, ForcedKernelPairsBitwise) {
  const auto L = gen::kkt_structure(3000, 13, 3.0, 7);
  for (const auto tri :
       {TriKernelKind::kLevelSet, TriKernelKind::kSyncFree,
        TriKernelKind::kCusparseLike}) {
    for (const auto sq :
         {SpmvKernelKind::kScalarCsr, SpmvKernelKind::kVectorCsr,
          SpmvKernelKind::kScalarDcsr, SpmvKernelKind::kVectorDcsr}) {
      auto o = opts<double>(BlockScheme::kRecursive, 300);
      o.adaptive = false;
      o.forced_tri = tri;
      o.forced_square = sq;
      const BlockSolver<double> solver(L, o);
      expect_batched_matches(solver, solver, 3, 303,
                             to_string(tri) + "/" + to_string(sq));
    }
  }
}

TEST(Batched, ForcedKernelPairFloat) {
  const auto Lf = gen::convert_values<float>(gen::grid2d(40, 25, 5));
  auto o = opts<float>(BlockScheme::kRecursive, 150);
  o.adaptive = false;
  o.forced_tri = TriKernelKind::kCusparseLike;
  o.forced_square = SpmvKernelKind::kVectorDcsr;
  const BlockSolver<float> solver(Lf, o);
  expect_batched_matches(solver, solver, 4, 304, "float forced pair");
}

TEST(Batched, DiagonalKernelBitwise) {
  const auto L = gen::diagonal(257, 1);
  const BlockSolver<double> solver(L, opts<double>(BlockScheme::kRecursive));
  // The adaptive selector must have picked the completely-parallel kernel —
  // otherwise this test is not covering the batched diagonal path.
  ASSERT_FALSE(solver.tri_info().empty());
  for (const auto& info : solver.tri_info())
    EXPECT_EQ(info.kind, TriKernelKind::kCompletelyParallel);
  expect_batched_matches(solver, solver, 4, 305, "diagonal");
}

// --- Thread sweep: k = 16 stays bitwise equal at any thread count ----------

TEST(Batched, ThreadSweepK16Bitwise) {
  const auto L = gen::grid2d(40, 25, 5);
  for (const auto scheme : {BlockScheme::kRecursive, BlockScheme::kColumn,
                            BlockScheme::kHbmc}) {
    const BlockSolver<double> ref(L, opts<double>(scheme, 150));
    for (const int t : {1, 2, 4}) {
      auto o = opts<double>(scheme, 150);
      o.threads = t;
      const BlockSolver<double> solver(L, o);
      expect_batched_matches(solver, ref, 16, 306,
                             to_string(scheme) + " threads=" +
                                 std::to_string(t));
    }
  }
}

TEST(Batched, ThreadSweepFloat) {
  const auto Lf = gen::convert_values<float>(gen::banded(800, 16, 3.0, 4));
  const BlockSolver<float> ref(Lf, opts<float>(BlockScheme::kRecursive, 150));
  for (const int t : {2, 4}) {
    auto o = opts<float>(BlockScheme::kRecursive, 150);
    o.threads = t;
    const BlockSolver<float> solver(Lf, o);
    expect_batched_matches(solver, ref, 16, 307,
                           "float threads=" + std::to_string(t));
  }
}

// --- Edge cases ------------------------------------------------------------

TEST(Batched, KZeroReturnsEmptyPanel) {
  const BlockSolver<double> solver(gen::diagonal(64, 2),
                                   opts<double>(BlockScheme::kColumn));
  EXPECT_TRUE(solver.solve_many({}, 0).empty());
}

TEST(Batched, KOneMatchesSolve) {
  const auto L = gen::banded(800, 16, 3.0, 4);
  const BlockSolver<double> solver(L, opts<double>(BlockScheme::kRow));
  expect_batched_matches(solver, solver, 1, 308, "k=1");
  const BlockSolver<double> hbmc(L, opts<double>(BlockScheme::kHbmc));
  expect_batched_matches(hbmc, hbmc, 1, 308, "hbmc k=1");
}

TEST(Batched, WrongPanelSizeThrowsTyped) {
  const BlockSolver<double> solver(gen::diagonal(64, 2),
                                   opts<double>(BlockScheme::kColumn));
  EXPECT_THROW(solver.solve_many(std::vector<double>(63, 1.0), 1), Error);
  EXPECT_THROW(solver.solve_many(std::vector<double>(128, 1.0), 1), Error);
}

// --- Hardened panel path ---------------------------------------------------

TEST(Batched, CheckedHealthyPanelVerifiesEveryColumn) {
  const auto L = gen::grid2d(30, 20, 9);
  const BlockSolver<double> solver(L, opts<double>(BlockScheme::kRecursive,
                                                   150));
  const index_t k = 3;
  const auto B = gen::random_rhs<double>(L.nrows * k, 309);
  const auto res = solver.solve_many_checked(B, k);
  ASSERT_TRUE(res.ok()) << res.status.to_string();
  ASSERT_EQ(res.reports.size(), static_cast<std::size_t>(k));
  for (index_t c = 0; c < k; ++c) {
    const auto& rep = res.reports[static_cast<std::size_t>(c)];
    EXPECT_TRUE(rep.residual_checked);
    EXPECT_LE(rep.residual, rep.tolerance);
    EXPECT_TRUE(rep.fallbacks.empty());
    EXPECT_TRUE(VectorsNear(panel_column(res.X, L.nrows, c),
                            sptrsv_serial(L, panel_column(B, L.nrows, c)),
                            default_tol<double>()))
        << "column " << c;
  }
}

TEST(Batched, CheckedRequiresVerifyEnabled) {
  auto o = opts<double>(BlockScheme::kColumn);
  o.verify.enabled = false;
  const BlockSolver<double> solver(gen::diagonal(64, 2), o);
  const auto res = solver.solve_many_checked(std::vector<double>(128, 1.0), 2);
  EXPECT_EQ(res.status.code(), StatusCode::kInvalidArgument);
}

TEST(Batched, CheckedNonFinitePanelEntryTyped) {
  const auto L = gen::banded(500, 8, 2.0, 3);
  const BlockSolver<double> solver(L, opts<double>(BlockScheme::kRecursive));
  auto B = gen::random_rhs<double>(L.nrows * 2, 310);
  B[static_cast<std::size_t>(L.nrows) + 17] =
      std::numeric_limits<double>::quiet_NaN();
  const auto res = solver.solve_many_checked(B, 2);
  EXPECT_EQ(res.status.code(), StatusCode::kNonFinite);
  EXPECT_EQ(res.status.location(),
            static_cast<std::int64_t>(L.nrows) + 17);
  EXPECT_NE(res.status.message().find("column 1"), std::string::npos);
}

template <class T>
typename BlockSolver<T>::Options ladder_options(int corrupt_attempts,
                                                index_t column) {
  typename BlockSolver<T>::Options o;
  o.planner.stop_rows = 64;   // several triangular blocks
  o.adaptive = false;         // pin the primary kernel for determinism
  o.forced_tri = TriKernelKind::kSyncFree;
  o.fault.tri_block = 0;
  o.fault.corrupt_attempts = corrupt_attempts;
  o.fault.column = column;
  return o;
}

TEST(Batched, CheckedFaultOnOneColumnDegradesAlone) {
  const auto L = gen::grid2d(30, 20, 9);
  const index_t k = 3;
  const auto B = gen::random_rhs<double>(L.nrows * k, 311);
  const BlockSolver<double> solver(L, ladder_options<double>(1, 1));
  const auto res = solver.solve_many_checked(B, k);
  ASSERT_TRUE(res.ok()) << res.status.to_string();
  ASSERT_EQ(res.reports.size(), static_cast<std::size_t>(k));
  // Only the poisoned column engaged the ladder.
  ASSERT_EQ(res.reports[1].fallbacks.size(), 1u);
  EXPECT_EQ(res.reports[1].fallbacks[0].block, 0);
  EXPECT_EQ(res.reports[1].fallbacks[0].from, TriKernelKind::kSyncFree);
  EXPECT_EQ(res.reports[1].fallbacks[0].to, FallbackEvent::Rung::kLevelSet);
  EXPECT_TRUE(res.reports[0].fallbacks.empty());
  EXPECT_TRUE(res.reports[2].fallbacks.empty());
  // Every column — the degraded one included — is still correct.
  for (index_t c = 0; c < k; ++c)
    EXPECT_TRUE(VectorsNear(panel_column(res.X, L.nrows, c),
                            sptrsv_serial(L, panel_column(B, L.nrows, c)),
                            default_tol<double>()))
        << "column " << c;
}

TEST(Batched, CheckedFaultDegradesToSerialRung) {
  const auto L = gen::grid2d(30, 20, 9);
  const index_t k = 2;
  const auto B = gen::random_rhs<double>(L.nrows * k, 312);
  const BlockSolver<double> solver(L, ladder_options<double>(2, 0));
  const auto res = solver.solve_many_checked(B, k);
  ASSERT_TRUE(res.ok()) << res.status.to_string();
  ASSERT_EQ(res.reports[0].fallbacks.size(), 2u);
  EXPECT_EQ(res.reports[0].fallbacks[0].to, FallbackEvent::Rung::kLevelSet);
  EXPECT_EQ(res.reports[0].fallbacks[1].to, FallbackEvent::Rung::kSerial);
  EXPECT_TRUE(res.reports[1].fallbacks.empty());
}

TEST(Batched, CheckedLadderExhaustionNamesTheColumn) {
  const auto L = gen::grid2d(30, 20, 9);
  const index_t k = 3;
  const auto B = gen::random_rhs<double>(L.nrows * k, 313);
  const BlockSolver<double> solver(L, ladder_options<double>(3, 2));
  const auto res = solver.solve_many_checked(B, k);
  EXPECT_EQ(res.status.code(), StatusCode::kNumericalBreakdown);
  EXPECT_EQ(res.status.location(), 2);
  EXPECT_NE(res.status.message().find("column 2"), std::string::npos);
  EXPECT_EQ(res.reports[2].fallbacks.size(), 2u);  // both rungs were tried
}

}  // namespace
}  // namespace blocktri
