// SpMV kernel tests: all four kernels must agree with the dense oracle on
// the update form y -= A x, and their cost models must reflect their design
// points (divergence for scalar, empty-row skipping for DCSR).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "gen/generators.hpp"
#include "helpers.hpp"
#include "sim/kernel_sim.hpp"
#include "sparse/convert.hpp"
#include "sparse/dense.hpp"
#include "spmv/kernels.hpp"

namespace blocktri {
namespace {

using blocktri::testing::VectorsNear;

Csr<double> random_rect(index_t nrows, index_t ncols, offset_t nnz,
                        std::uint64_t seed) {
  Rng rng(seed);
  Coo<double> a;
  a.nrows = nrows;
  a.ncols = ncols;
  for (offset_t k = 0; k < nnz; ++k) {
    a.row.push_back(static_cast<index_t>(rng.uniform_int(0, nrows - 1)));
    a.col.push_back(static_cast<index_t>(rng.uniform_int(0, ncols - 1)));
    a.val.push_back(rng.uniform(-1, 1));
  }
  return coo_to_csr(a);
}

template <class T>
std::vector<T> oracle_update(const Csr<T>& a, const std::vector<T>& x,
                             const std::vector<T>& y0) {
  const auto d = to_dense(a);
  const auto ax = dense_matvec(d, a.nrows, a.ncols, x);
  std::vector<T> y = y0;
  for (index_t i = 0; i < a.nrows; ++i) y[static_cast<std::size_t>(i)] -= ax[static_cast<std::size_t>(i)];
  return y;
}

class SpmvKernels : public ::testing::TestWithParam<SpmvKernelKind> {};

TEST_P(SpmvKernels, MatchesDenseOracle) {
  const auto a = random_rect(70, 45, 300, 3);
  const auto x = gen::random_rhs<double>(45, 4);
  const auto y0 = gen::random_rhs<double>(70, 5);
  auto y = y0;
  spmv_update(GetParam(), a, x.data(), y.data(), nullptr);
  EXPECT_TRUE(VectorsNear(y, oracle_update(a, x, y0), 1e-12));
}

TEST_P(SpmvKernels, HandlesEmptyRowsAndAllEmpty) {
  // Block with 90% empty rows.
  Coo<double> coo;
  coo.nrows = 100;
  coo.ncols = 20;
  coo.row = {7, 7, 55, 99};
  coo.col = {3, 11, 0, 19};
  coo.val = {1.0, -2.0, 0.5, 3.0};
  const auto a = coo_to_csr(coo);
  const auto x = gen::random_rhs<double>(20, 6);
  const auto y0 = gen::random_rhs<double>(100, 7);
  auto y = y0;
  spmv_update(GetParam(), a, x.data(), y.data(), nullptr);
  EXPECT_TRUE(VectorsNear(y, oracle_update(a, x, y0), 1e-12));

  // Completely empty block: y unchanged.
  Csr<double> empty;
  empty.nrows = 10;
  empty.ncols = 10;
  empty.row_ptr.assign(11, 0);
  auto y2 = y0;
  y2.resize(10);
  const auto y2_before = y2;
  spmv_update(GetParam(), empty, x.data(), y2.data(), nullptr);
  EXPECT_EQ(y2, y2_before);
}

TEST_P(SpmvKernels, LongSingleRow) {
  // One row of 1000 entries: exercises the >32-lane grouping paths.
  Coo<double> coo;
  coo.nrows = 1;
  coo.ncols = 1000;
  for (index_t j = 0; j < 1000; ++j) {
    coo.row.push_back(0);
    coo.col.push_back(j);
    coo.val.push_back(0.001 * j);
  }
  const auto a = coo_to_csr(coo);
  const auto x = gen::random_rhs<double>(1000, 8);
  std::vector<double> y = {10.0};
  spmv_update(GetParam(), a, x.data(), y.data(), nullptr);
  double want = 10.0;
  for (index_t j = 0; j < 1000; ++j)
    want -= 0.001 * j * x[static_cast<std::size_t>(j)];
  EXPECT_NEAR(y[0], want, 1e-9);
}

TEST_P(SpmvKernels, SimProducesPositiveCost) {
  const auto a = random_rect(200, 100, 1500, 9);
  const auto x = gen::random_rhs<double>(100, 10);
  auto y = gen::random_rhs<double>(200, 11);
  const auto gpu = sim::titan_rtx();
  sim::KernelSim ks(gpu, nullptr, true);
  SpmvSim s{&ks, 0, 1u << 20};
  spmv_update(GetParam(), a, x.data(), y.data(), &s);
  const auto rep = ks.finish();
  EXPECT_GT(rep.ns, 0.0);
  EXPECT_EQ(rep.flops, 2 * a.nnz());
  EXPECT_GT(rep.bytes, 0);
  EXPECT_GT(rep.tasks, 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, SpmvKernels,
    ::testing::Values(SpmvKernelKind::kScalarCsr, SpmvKernelKind::kVectorCsr,
                      SpmvKernelKind::kScalarDcsr,
                      SpmvKernelKind::kVectorDcsr),
    [](const ::testing::TestParamInfo<SpmvKernelKind>& info) {
      std::string n = to_string(info.param);
      for (auto& c : n)
        if (c == '-') c = '_';
      return n;
    });

TEST(SpmvCost, ScalarSuffersDivergenceOnSkewedRows) {
  // 32 rows: 31 rows with 1 nnz, one row with 320 nnz. The scalar kernel's
  // warp runs 320 iterations; the vector kernel assigns a warp per row.
  Coo<double> coo;
  coo.nrows = 32;
  coo.ncols = 400;
  Rng rng(12);
  for (index_t i = 0; i < 31; ++i) {
    coo.row.push_back(i);
    coo.col.push_back(static_cast<index_t>(rng.uniform_int(0, 399)));
    coo.val.push_back(1.0);
  }
  for (index_t k = 0; k < 320; ++k) {
    coo.row.push_back(31);
    coo.col.push_back(static_cast<index_t>(rng.uniform_int(0, 399)));
    coo.val.push_back(1.0);
  }
  const auto a = coo_to_csr(coo);
  const auto x = gen::random_rhs<double>(400, 13);
  const auto gpu = sim::titan_rtx();

  auto time_kind = [&](SpmvKernelKind kind) {
    auto y = gen::random_rhs<double>(32, 14);
    sim::KernelSim ks(gpu, nullptr, true);
    SpmvSim s{&ks, 0, 1u << 20};
    spmv_update(kind, a, x.data(), y.data(), &s);
    return ks.finish().latency_ns;
  };
  // The scalar warp serialises ~max_row_len iterations; vector splits the
  // long row into ceil(len/32) groups and runs the short rows in parallel
  // warps. Expect a large gap.
  EXPECT_GT(time_kind(SpmvKernelKind::kScalarCsr),
            3.0 * time_kind(SpmvKernelKind::kVectorCsr));
}

TEST(SpmvCost, DcsrSkipsEmptyRows) {
  // 10000 rows, only 16 non-empty: DCSR should be far cheaper than CSR for
  // the scalar kernel (which otherwise burns a warp slot per 32 empty rows).
  Coo<double> coo;
  coo.nrows = 10000;
  coo.ncols = 64;
  Rng rng(15);
  for (int k = 0; k < 16; ++k) {
    coo.row.push_back(static_cast<index_t>(rng.uniform_int(0, 9999)));
    coo.col.push_back(static_cast<index_t>(rng.uniform_int(0, 63)));
    coo.val.push_back(1.0);
  }
  const auto a = coo_to_csr(coo);
  const auto x = gen::random_rhs<double>(64, 16);
  const auto gpu = sim::titan_rtx();

  auto cost = [&](SpmvKernelKind kind) {
    auto y = gen::random_rhs<double>(10000, 17);
    sim::KernelSim ks(gpu, nullptr, true);
    SpmvSim s{&ks, 0, 1u << 24};
    spmv_update(kind, a, x.data(), y.data(), &s);
    const auto rep = ks.finish();
    return rep;
  };
  const auto csr = cost(SpmvKernelKind::kScalarCsr);
  const auto dcsr = cost(SpmvKernelKind::kScalarDcsr);
  EXPECT_LT(dcsr.tasks, csr.tasks / 10);
  EXPECT_LT(dcsr.ns, csr.ns);
}

TEST(Spmv, ApplyMatchesOracle) {
  const auto a = random_rect(30, 30, 200, 18);
  const auto x = gen::random_rhs<double>(30, 19);
  const auto y = spmv_apply(a, x);
  const auto want = dense_matvec(to_dense(a), 30, 30, x);
  EXPECT_TRUE(VectorsNear(y, want, 1e-12));
}

TEST(Spmv, FloatKernelsAgreeWithDouble) {
  const auto ad = random_rect(50, 40, 400, 20);
  const auto af = gen::convert_values<float>(ad);
  const auto xd = gen::random_rhs<double>(40, 21);
  const auto xf = gen::random_rhs<float>(40, 21);
  auto yd = gen::random_rhs<double>(50, 22);
  auto yf = gen::random_rhs<float>(50, 22);
  spmv_scalar_csr(ad, xd.data(), yd.data(), nullptr);
  spmv_scalar_csr(af, xf.data(), yf.data(), nullptr);
  for (std::size_t i = 0; i < yd.size(); ++i)
    EXPECT_NEAR(static_cast<double>(yf[i]), yd[i], 2e-4);
}

TEST(Spmv, KindNames) {
  EXPECT_EQ(to_string(SpmvKernelKind::kScalarCsr), "scalar-CSR");
  EXPECT_EQ(to_string(SpmvKernelKind::kVectorDcsr), "vector-DCSR");
}

}  // namespace
}  // namespace blocktri
