// Shared gtest helpers: tolerance-aware vector comparison, dense oracles,
// and a registry of small structurally-diverse matrices the solver tests
// sweep over.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <string>
#include <vector>

#include "blocktri.hpp"

namespace blocktri::testing {

/// Max-norm comparison with a tolerance scaled to the value type and the
/// magnitude of the reference.
template <class T>
::testing::AssertionResult VectorsNear(const std::vector<T>& got,
                                       const std::vector<T>& want,
                                       double rel_tol) {
  if (got.size() != want.size())
    return ::testing::AssertionFailure()
           << "size mismatch: " << got.size() << " vs " << want.size();
  double max_ref = 1.0;
  for (const T w : want)
    max_ref = std::max(max_ref, std::fabs(static_cast<double>(w)));
  const double tol = rel_tol * max_ref;
  for (std::size_t i = 0; i < got.size(); ++i) {
    const double d = std::fabs(static_cast<double>(got[i]) -
                               static_cast<double>(want[i]));
    if (!(d <= tol))
      return ::testing::AssertionFailure()
             << "entry " << i << ": got " << static_cast<double>(got[i])
             << ", want " << static_cast<double>(want[i]) << " (|diff| " << d
             << " > tol " << tol << ")";
  }
  return ::testing::AssertionSuccess();
}

template <class T>
constexpr double default_tol() {
  return sizeof(T) == 4 ? 2e-3 : 1e-10;
}

/// Small matrices covering every structural family, for exhaustive solver
/// sweeps. Kept small (n <= ~4000) so the full cross product of solver x
/// matrix x precision runs in seconds.
struct TestMatrix {
  std::string name;
  std::function<Csr<double>()> build;
};

inline std::vector<TestMatrix> test_matrices() {
  using namespace blocktri::gen;
  return {
      {"diag", [] { return diagonal(257, 1); }},
      {"chain", [] { return tridiag_chain(300, 2); }},
      {"chain_banded", [] { return chain_banded(500, 8, 2.0, 3); }},
      {"banded", [] { return banded(800, 16, 3.0, 4); }},
      {"grid2d", [] { return grid2d(40, 25, 5); }},
      {"grid3d", [] { return grid3d(10, 11, 9, 6); }},
      {"powerlaw", [] { return power_law(1200, 2.1, 256, 6.0, 7); }},
      {"rndlevels", [] { return random_levels(1500, 24, 3.0, 1.0, 8); }},
      {"rndlevels_deep", [] { return random_levels(2000, 500, 2.0, 1.0, 9); }},
      {"twolevel", [] { return two_level_kkt(1000, 500, 5.0, 10); }},
      {"kkt", [] { return kkt_structure(1600, 12, 3.0, 11); }},
      {"trace", [] { return trace_network(1800, 9, 1.8, 0.45, 12); }},
      {"dense", [] { return dense_lower(120, 0.3, 13); }},
      {"single", [] { return diagonal(1, 14); }},
      {"tiny", [] { return dense_lower(5, 0.8, 15); }},
  };
}

/// The paper's Figure 1 example: an 8x8 lower triangular matrix with 15
/// nonzeros and four level sets {0,1,6}, {2,3,4}, {5}, {7}.
inline Csr<double> figure1_matrix() {
  // Dependencies (strictly-lower entries) chosen to produce the figure's
  // level structure: rows 0, 1 and 6 are independent; x2, x3, x4 depend on
  // level-0 components; x5 depends on x2; x7 depends on x5 and x6.
  Coo<double> coo;
  coo.nrows = coo.ncols = 8;
  auto put = [&coo](index_t r, index_t c, double v) {
    coo.row.push_back(r);
    coo.col.push_back(c);
    coo.val.push_back(v);
  };
  for (index_t i = 0; i < 8; ++i) put(i, i, 2.0 + i);
  put(2, 0, 1.0);
  put(3, 1, 1.0);
  put(4, 0, 1.0);
  put(5, 2, 1.0);
  put(5, 0, 1.0);
  put(7, 5, 1.0);
  put(7, 6, 1.0);
  return coo_to_csr(coo);
}

}  // namespace blocktri::testing
