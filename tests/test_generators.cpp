// Generator tests: every generator must emit a valid nonsingular lower
// triangle with the structural fingerprint it promises, deterministically.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "analysis/features.hpp"
#include "analysis/levels.hpp"
#include "gen/generators.hpp"
#include "gen/suite.hpp"
#include "sparse/triangular.hpp"

namespace blocktri {
namespace {

void expect_valid_lower(const Csr<double>& L) {
  validate(L);
  EXPECT_TRUE(is_lower_triangular_nonsingular(L));
}

TEST(Generators, DiagonalStructure) {
  const auto L = gen::diagonal(123, 1);
  expect_valid_lower(L);
  EXPECT_EQ(L.nnz(), 123);
  EXPECT_EQ(compute_level_sets(L).nlevels, 1);
}

TEST(Generators, TridiagChainStructure) {
  const auto L = gen::tridiag_chain(200, 2);
  expect_valid_lower(L);
  EXPECT_EQ(L.nnz(), 2 * 200 - 1);
  EXPECT_EQ(compute_level_sets(L).nlevels, 200);
}

TEST(Generators, BandedRespectsBandwidth) {
  const auto L = gen::banded(500, 10, 3.0, 3);
  expect_valid_lower(L);
  EXPECT_LE(compute_features(L).bandwidth, 10);
  // Average ~3 in-band entries + diagonal.
  EXPECT_NEAR(compute_features(L).nnz_per_row, 4.0, 0.5);
}

TEST(Generators, Grid2dLevels) {
  const auto L = gen::grid2d(12, 9, 4);
  expect_valid_lower(L);
  EXPECT_EQ(L.nrows, 108);
  const auto ls = compute_level_sets(L);
  EXPECT_EQ(ls.nlevels, 12 + 9 - 1);
  EXPECT_EQ(parallelism_stats(ls).max_width, 9);
}

TEST(Generators, Grid3dLevels) {
  const auto L = gen::grid3d(5, 6, 7, 5);
  expect_valid_lower(L);
  EXPECT_EQ(L.nrows, 210);
  EXPECT_EQ(compute_level_sets(L).nlevels, 5 + 6 + 7 - 2);
}

TEST(Generators, Laplace3dStructure) {
  const auto L = gen::laplace3d(6, 5, 4, 17);
  expect_valid_lower(L);
  EXPECT_EQ(L.nrows, 120);
  // 7-point stencil, lower half: diagonal + up to three backward neighbours.
  // Wavefront depth is the grid's anti-diagonal count.
  EXPECT_EQ(compute_level_sets(L).nlevels, 6 + 5 + 4 - 2);
  for (index_t i = 0; i < L.nrows; ++i) {
    const offset_t lo = L.row_ptr[static_cast<std::size_t>(i)];
    const offset_t hi = L.row_ptr[static_cast<std::size_t>(i) + 1];
    ASSERT_GE(hi - lo, 1);
    ASSERT_LE(hi - lo, 4);
    // Columns ascending, diagonal last; off-diagonals sit at -1 up to the
    // seeded jitter, the diagonal at the stencil's +6.
    for (offset_t k = lo; k < hi - 1; ++k) {
      if (k > lo) EXPECT_LT(L.col_idx[k - 1], L.col_idx[k]);
      EXPECT_NEAR(L.val[static_cast<std::size_t>(k)], -1.0, 1e-5);
    }
    EXPECT_EQ(L.col_idx[static_cast<std::size_t>(hi - 1)], i);
    EXPECT_DOUBLE_EQ(L.val[static_cast<std::size_t>(hi - 1)], 6.0);
  }
}

TEST(Generators, Laplace3dCornerRowsMatchStencil) {
  const auto L = gen::laplace3d(4, 3, 2, 1);
  // Row 0 (corner): diagonal only. The last row sees all three backward
  // neighbours: x-1, y-1 (offset nx) and z-1 (offset nx*ny).
  EXPECT_EQ(L.row_ptr[1] - L.row_ptr[0], 1);
  const index_t last = L.nrows - 1;
  const offset_t lo = L.row_ptr[static_cast<std::size_t>(last)];
  ASSERT_EQ(L.row_ptr[static_cast<std::size_t>(last) + 1] - lo, 4);
  EXPECT_EQ(L.col_idx[static_cast<std::size_t>(lo)], last - 4 * 3);
  EXPECT_EQ(L.col_idx[static_cast<std::size_t>(lo) + 1], last - 4);
  EXPECT_EQ(L.col_idx[static_cast<std::size_t>(lo) + 2], last - 1);
  EXPECT_EQ(L.col_idx[static_cast<std::size_t>(lo) + 3], last);
}

TEST(Generators, Laplace3dDeterministicInSeed) {
  const auto a = gen::laplace3d(5, 5, 5, 42);
  const auto b = gen::laplace3d(5, 5, 5, 42);
  EXPECT_TRUE(equals(a, b));
  const auto c = gen::laplace3d(5, 5, 5, 43);
  // Same structure, different jitter.
  EXPECT_EQ(c.row_ptr, a.row_ptr);
  EXPECT_EQ(c.col_idx, a.col_idx);
  EXPECT_FALSE(equals(a, c));
}

TEST(Generators, PowerLawHasHubColumns) {
  const auto L = gen::power_law(4000, 2.0, 512, 6.0, 6);
  expect_valid_lower(L);
  // Column in-degrees should be heavily skewed: the busiest column must be
  // far above the mean — that is the whole point of the generator.
  std::vector<offset_t> indeg(static_cast<std::size_t>(L.nrows), 0);
  for (index_t i = 0; i < L.nrows; ++i)
    for (offset_t k = L.row_ptr[static_cast<std::size_t>(i)];
         k < L.row_ptr[static_cast<std::size_t>(i) + 1] - 1; ++k)
      ++indeg[static_cast<std::size_t>(
          L.col_idx[static_cast<std::size_t>(k)])];
  offset_t max_indeg = 0;
  for (const auto d : indeg) max_indeg = std::max(max_indeg, d);
  const double mean =
      static_cast<double>(L.nnz() - L.nrows) / static_cast<double>(L.nrows);
  EXPECT_GT(static_cast<double>(max_indeg), 20.0 * mean);
}

TEST(Generators, RandomLevelsHitsExactLevelCount) {
  for (const index_t nl : {1, 2, 7, 64, 300}) {
    const auto L = gen::random_levels(1200, nl, 2.0, 1.0, 7);
    expect_valid_lower(L);
    EXPECT_EQ(compute_level_sets(L).nlevels, nl) << "nlevels=" << nl;
  }
}

TEST(Generators, RandomLevelsWidthRatioShapesLevels) {
  const auto flat = gen::random_levels(1000, 10, 1.0, 1.0, 8);
  const auto decaying = gen::random_levels(1000, 10, 1.0, 0.5, 8);
  const auto lf = compute_level_sets(flat);
  const auto ld = compute_level_sets(decaying);
  // Decaying widths: first level much wider than the last.
  EXPECT_GT(ld.level_width(0), 4 * ld.level_width(9));
  // Uniform widths: first and last within 2x.
  EXPECT_LT(lf.level_width(0), 2 * lf.level_width(9) + 2);
}

TEST(Generators, TwoLevelKkt) {
  const auto L = gen::two_level_kkt(2000, 1000, 5.0, 9);
  expect_valid_lower(L);
  const auto ls = compute_level_sets(L);
  EXPECT_EQ(ls.nlevels, 2);
  EXPECT_EQ(ls.level_width(0), 1000);
  EXPECT_EQ(ls.level_width(1), 1000);
}

TEST(Generators, KktStructureLevels) {
  const auto L = gen::kkt_structure(3000, 17, 3.0, 10);
  expect_valid_lower(L);
  EXPECT_EQ(compute_level_sets(L).nlevels, 17);
}

TEST(Generators, TraceNetworkProfile) {
  const auto L = gen::trace_network(5000, 19, 1.8, 0.45, 11);
  expect_valid_lower(L);
  const auto ls = compute_level_sets(L);
  EXPECT_EQ(ls.nlevels, 19);
  // Front-loaded widths.
  EXPECT_GT(ls.level_width(0), ls.level_width(18) * 10);
}

TEST(Generators, ChainBandedIsFullySerial) {
  const auto L = gen::chain_banded(400, 8, 2.0, 12);
  expect_valid_lower(L);
  EXPECT_EQ(compute_level_sets(L).nlevels, 400);
}

TEST(Generators, DenseLowerDensity) {
  const auto L = gen::dense_lower(100, 0.5, 13);
  expect_valid_lower(L);
  const double fill = static_cast<double>(L.nnz() - 100) / (100.0 * 99.0 / 2.0);
  EXPECT_NEAR(fill, 0.5, 0.07);
}

TEST(Generators, DeterministicAcrossCalls) {
  const auto a = gen::power_law(500, 2.2, 64, 4.0, 99);
  const auto b = gen::power_law(500, 2.2, 64, 4.0, 99);
  EXPECT_TRUE(equals(a, b));
  const auto c = gen::power_law(500, 2.2, 64, 4.0, 100);
  EXPECT_FALSE(equals(a, c));
}

TEST(Generators, DiagonalDominance) {
  const auto L = gen::kkt_structure(300, 9, 4.0, 14);
  for (index_t i = 0; i < L.nrows; ++i) {
    double offsum = 0.0;
    const offset_t hi = L.row_ptr[static_cast<std::size_t>(i) + 1];
    for (offset_t k = L.row_ptr[static_cast<std::size_t>(i)]; k < hi - 1; ++k)
      offsum += std::abs(L.val[static_cast<std::size_t>(k)]);
    EXPECT_GT(L.val[static_cast<std::size_t>(hi - 1)], offsum);
  }
}

TEST(Generators, ConvertValuesPreservesStructure) {
  const auto d = gen::grid2d(9, 9, 15);
  const auto f = gen::convert_values<float>(d);
  EXPECT_EQ(f.row_ptr, d.row_ptr);
  EXPECT_EQ(f.col_idx, d.col_idx);
  for (std::size_t k = 0; k < d.val.size(); ++k)
    EXPECT_FLOAT_EQ(f.val[k], static_cast<float>(d.val[k]));
}

TEST(Generators, RandomRhsDeterministicAndBounded) {
  const auto a = gen::random_rhs<double>(100, 5);
  const auto b = gen::random_rhs<double>(100, 5);
  EXPECT_EQ(a, b);
  for (const double v : a) {
    EXPECT_GE(v, -1.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(Suite, PaperSuiteHas159UniqueEntries) {
  const auto suite = gen::paper_suite();
  ASSERT_EQ(suite.size(), 159u);
  std::set<std::string> names;
  for (const auto& e : suite) {
    EXPECT_FALSE(e.name.empty());
    EXPECT_FALSE(e.family.empty());
    names.insert(e.name);
  }
  EXPECT_EQ(names.size(), 159u);
}

TEST(Suite, RepresentativeSuiteMatchesTable4Profiles) {
  const auto reps = gen::representative_suite();
  ASSERT_EQ(reps.size(), 6u);

  // Table 4's discriminating feature is the level structure; check each
  // stand-in hits its target regime.
  auto levels_of = [](const gen::SuiteEntry& e) {
    return compute_level_sets(e.build()).nlevels;
  };
  EXPECT_EQ(reps[0].mimics, "nlpkkt200");
  EXPECT_EQ(levels_of(reps[0]), 2);
  EXPECT_EQ(reps[1].mimics, "mawi_201512020030");
  EXPECT_EQ(levels_of(reps[1]), 19);
  EXPECT_EQ(reps[2].mimics, "kkt_power");
  EXPECT_EQ(levels_of(reps[2]), 17);
  EXPECT_EQ(reps[3].mimics, "FullChip");
  EXPECT_EQ(levels_of(reps[3]), 324);
  EXPECT_EQ(reps[4].mimics, "vas_stokes_4M");
  EXPECT_EQ(levels_of(reps[4]), 2815);
  EXPECT_EQ(reps[5].mimics, "tmt_sym");
  const auto tmt = reps[5].build();
  EXPECT_EQ(compute_level_sets(tmt).nlevels, tmt.nrows);
}

TEST(Suite, SampleEntriesBuildValidMatrices) {
  const auto suite = gen::paper_suite();
  // One representative from each family (first occurrence).
  std::set<std::string> seen;
  for (const auto& e : suite) {
    if (!seen.insert(e.family).second) continue;
    const auto L = e.build();
    validate(L);
    EXPECT_TRUE(is_lower_triangular_nonsingular(L)) << e.name;
  }
  EXPECT_GE(seen.size(), 8u);
}

TEST(Suite, FindByName) {
  const auto e = gen::find_suite_entry("tmt-sim");
  EXPECT_EQ(e.mimics, "tmt_sym");
  EXPECT_THROW(gen::find_suite_entry("no-such-matrix"), Error);
}

}  // namespace
}  // namespace blocktri
namespace blocktri {
namespace {

TEST(Generators, TopologicalShuffleIsEquivalentSystem) {
  const auto L = gen::kkt_structure(2000, 9, 3.0, 21);
  const auto S = gen::random_topological_shuffle(L, 7);
  validate(S);
  EXPECT_TRUE(is_lower_triangular_nonsingular(S));
  EXPECT_EQ(S.nnz(), L.nnz());
  // The level structure is a graph invariant: identical level histogram.
  const auto la = compute_level_sets(L);
  const auto lb = compute_level_sets(S);
  ASSERT_EQ(la.nlevels, lb.nlevels);
  for (index_t l = 0; l < la.nlevels; ++l)
    EXPECT_EQ(la.level_width(l), lb.level_width(l));
  // And it genuinely shuffles: rows should no longer be level-sorted.
  bool sorted = true;
  for (index_t i = 1; i < S.nrows; ++i)
    if (lb.level_of[static_cast<std::size_t>(i - 1)] >
        lb.level_of[static_cast<std::size_t>(i)])
      sorted = false;
  EXPECT_FALSE(sorted);
}

// Regression: bandwidth used std::abs(long(i) - j), which overflows on LLP64
// platforms (32-bit long) for index pairs spanning more than INT32_MAX.
// index_distance widens both operands to 64 bits first.
TEST(Features, IndexDistanceExactAtInt32Extremes) {
  EXPECT_EQ(index_distance(0, 2147483646), 2147483646);
  EXPECT_EQ(index_distance(2147483646, 0), 2147483646);
  EXPECT_EQ(index_distance(2147483646, 2147483646), 0);
  EXPECT_EQ(index_distance(1, 2147483646), 2147483645);
}

TEST(Features, BandwidthExactAtInt32Extremes) {
  // A 1 x INT32_MAX matrix with one entry in the last column: the widest
  // |i - j| a 32-bit index space can express.
  Csr<double> a;
  a.nrows = 1;
  a.ncols = 2147483647;
  a.row_ptr = {0, 1};
  a.col_idx = {2147483646};
  a.val = {1.0};
  EXPECT_EQ(compute_features(a).bandwidth, 2147483646);
}

TEST(Generators, TopologicalShuffleDeterministic) {
  const auto L = gen::power_law(500, 2.2, 64, 4.0, 3);
  EXPECT_TRUE(equals(gen::random_topological_shuffle(L, 9),
                     gen::random_topological_shuffle(L, 9)));
}

}  // namespace
}  // namespace blocktri
