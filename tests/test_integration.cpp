// End-to-end integration tests: the whole pipeline on samples of the
// benchmark suite, upper-triangular systems through the mirror adapter, and
// cross-solver agreement properties.
#include <gtest/gtest.h>

#include "core/solver.hpp"
#include "gen/generators.hpp"
#include "gen/suite.hpp"
#include "helpers.hpp"
#include "sparse/convert.hpp"
#include "sptrsv/serial.hpp"
#include "sptrsv/upper.hpp"

namespace blocktri {
namespace {

using blocktri::testing::default_tol;
using blocktri::testing::VectorsNear;

TEST(Integration, RepresentativeSuiteSolvesCorrectly) {
  // The full Table 4 pipeline, at reduced stop_rows so it runs quickly.
  for (const auto& entry : gen::representative_suite()) {
    if (entry.name == "nlpkkt-sim" || entry.name == "vas_stokes-sim")
      continue;  // the two largest: covered by the benches, skip in tests
    const Csr<double> L = entry.build();
    const auto b = gen::random_rhs<double>(L.nrows, 3);
    BlockSolver<double>::Options opt;
    opt.planner.stop_rows = std::max<index_t>(512, L.nrows / 16);
    opt.thresholds = simulator_fitted_thresholds();
    const BlockSolver<double> solver(L, opt);
    EXPECT_TRUE(VectorsNear(solver.solve(b), sptrsv_serial(L, b),
                            default_tol<double>()))
        << entry.name;
  }
}

TEST(Integration, SuiteSampleAcrossFamilies) {
  // First matrix of each family in the 159-matrix suite, shuffled to a
  // random topological order (collection-style input), through the whole
  // pipeline.
  std::set<std::string> seen;
  for (const auto& entry : gen::paper_suite()) {
    if (!seen.insert(entry.family).second) continue;
    Csr<double> L = entry.build();
    if (L.nrows > 120000) continue;  // keep the test quick
    L = gen::random_topological_shuffle(L, 99);
    const auto b = gen::random_rhs<double>(L.nrows, 4);
    BlockSolver<double>::Options opt;
    opt.planner.stop_rows = std::max<index_t>(512, L.nrows / 8);
    const BlockSolver<double> solver(L, opt);
    EXPECT_TRUE(VectorsNear(solver.solve(b), sptrsv_serial(L, b),
                            default_tol<double>()))
        << entry.name;
  }
  EXPECT_GE(seen.size(), 8u);
}

TEST(Upper, SerialBackwardSubstitution) {
  // U = L^T of a generated lower triangle; check against the dense oracle
  // through the lower mirror (independent path).
  const auto L = gen::kkt_structure(400, 7, 3.0, 5);
  const auto U = transpose(L);
  ASSERT_TRUE(is_upper_triangular_nonsingular(U));
  const auto b = gen::random_rhs<double>(400, 6);
  const auto x = sptrsv_upper_serial(U, b);
  // Residual check: U x == b.
  const auto Ux = spmv_apply(U, x);
  EXPECT_TRUE(VectorsNear(Ux, b, 1e-10));
}

TEST(Upper, DetectsNonUpper) {
  EXPECT_FALSE(is_upper_triangular_nonsingular(gen::tridiag_chain(5, 1)));
  EXPECT_TRUE(is_upper_triangular_nonsingular(gen::diagonal(5, 1)));
}

TEST(Upper, MirrorIsValidLowerTriangle) {
  const auto U = transpose(gen::power_law(600, 2.1, 64, 4.0, 7));
  const auto M = lower_mirror_of_upper(U);
  validate(M);
  EXPECT_TRUE(is_lower_triangular_nonsingular(M));
  EXPECT_EQ(M.nnz(), U.nnz());
  // Entry check: M[i][j] == U[n-1-i][n-1-j] on a dense copy.
  const auto du = to_dense(U);
  const auto dm = to_dense(M);
  const index_t n = U.nrows;
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j)
      EXPECT_EQ(dm[static_cast<std::size_t>(i) * n + j],
                du[static_cast<std::size_t>(n - 1 - i) * n + (n - 1 - j)]);
}

TEST(Upper, BlockSolverSolvesUpperSystemsViaMirror) {
  const auto U = transpose(gen::trace_network(3000, 9, 1.8, 0.45, 8));
  const auto b = gen::random_rhs<double>(3000, 9);
  const auto want = sptrsv_upper_serial(U, b);

  const auto got = solve_upper_with(
      U, b, [](const Csr<double>& lower, const std::vector<double>& rhs) {
        BlockSolver<double>::Options opt;
        opt.planner.stop_rows = 400;
        return BlockSolver<double>(lower, opt).solve(rhs);
      });
  EXPECT_TRUE(VectorsNear(got, want, default_tol<double>()));
}

TEST(Upper, FloatMirrorPath) {
  const auto Uf =
      gen::convert_values<float>(transpose(gen::banded(800, 8, 2.0, 10)));
  const auto b = gen::random_rhs<float>(800, 11);
  const auto want = sptrsv_upper_serial(Uf, b);
  const auto got = solve_upper_with(
      Uf, b, [](const Csr<float>& lower, const std::vector<float>& rhs) {
        return sptrsv_serial(lower, rhs);
      });
  EXPECT_TRUE(VectorsNear(got, want, default_tol<float>()));
}

TEST(Integration, BlockSolverSolutionsAgreeAcrossSchemes) {
  // Property: all three schemes and the serial oracle agree on the same
  // system (they compute in different orders, so agreement is a strong
  // whole-pipeline check).
  const auto L =
      gen::random_topological_shuffle(gen::kkt_structure(5000, 11, 3.0, 12),
                                      13);
  const auto b = gen::random_rhs<double>(5000, 14);
  const auto want = sptrsv_serial(L, b);
  for (const auto scheme :
       {BlockScheme::kColumn, BlockScheme::kRow, BlockScheme::kRecursive}) {
    BlockSolver<double>::Options opt;
    opt.scheme = scheme;
    opt.planner.nseg = 6;
    opt.planner.stop_rows = 600;
    const BlockSolver<double> solver(L, opt);
    EXPECT_TRUE(VectorsNear(solver.solve(b), want, default_tol<double>()))
        << to_string(scheme);
  }
}

}  // namespace
}  // namespace blocktri
