// Multithreaded host backend: thread-pool semantics, parallel-vs-serial
// equivalence for every kernel and for the BlockSolver executor, the wave
// analysis, and the fallback ladder under threads.
//
// Determinism contract (see DESIGN.md "Host-parallel execution"): the
// level-set, diagonal and SpMV parallel paths are bitwise identical to the
// serial ones (disjoint writes, deterministic chunking) and are compared
// with EXPECT_EQ; the sync-free parallel path accumulates through atomics in
// timing-dependent order and is compared normwise.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>

#include "common/thread_pool.hpp"
#include "helpers.hpp"

using namespace blocktri;
using namespace blocktri::testing;

namespace {

// BLOCKTRI_THREADS would override every Options::threads below.
[[maybe_unused]] const int kEnvCleared = [] {
  unsetenv("BLOCKTRI_THREADS");
  return 0;
}();

const std::vector<int> kThreadCounts = {2, 4, 8};

/// Matrices above the parallel gates (kHostParallelMinNnz etc.), so the
/// threaded paths actually engage rather than falling back to serial.
std::vector<TestMatrix> large_matrices() {
  using namespace blocktri::gen;
  return {
      {"banded_big", [] { return banded(30000, 32, 8.0, 21); }},
      {"levels_big", [] { return random_levels(20000, 50, 4.0, 1.0, 22); }},
      {"diag_big", [] { return diagonal(10000, 23); }},
  };
}

}  // namespace

// --- ThreadPool ------------------------------------------------------------

TEST(ThreadPool, RunExecutesEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::vector<std::atomic<int>> hits(97);
  pool.run(97, [&](int t) { hits[static_cast<std::size_t>(t)]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForCoversRangeWithDisjointChunks) {
  ThreadPool pool(3);
  std::vector<int> count(1000, 0);
  pool.parallel_for(0, 1000, [&](index_t b, index_t e, int chunk) {
    EXPECT_GE(chunk, 0);
    EXPECT_LT(chunk, pool.size());
    for (index_t i = b; i < e; ++i) count[static_cast<std::size_t>(i)]++;
  });
  EXPECT_EQ(std::accumulate(count.begin(), count.end(), 0), 1000);
  for (const int c : count) EXPECT_EQ(c, 1);
}

TEST(ThreadPool, ParallelForHandlesEmptyAndTinyRanges) {
  ThreadPool pool(4);
  int calls = 0;
  pool.parallel_for(5, 5, [&](index_t, index_t, int) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::vector<int> seen;
  pool.parallel_for(0, 2, [&](index_t b, index_t e, int) {
    for (index_t i = b; i < e; ++i) seen.push_back(static_cast<int>(i));
  });
  // 2 rows over 4 threads: at most 2 chunks, every row exactly once — but
  // order across chunks is not guaranteed, so sort.
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(seen, (std::vector<int>{0, 1}));
}

TEST(ThreadPool, RunPropagatesExceptionsAndStaysUsable) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.run(8, [&](int t) {
        if (t == 5) throw std::runtime_error("boom");
      }),
      std::runtime_error);
  // The pool must survive an exception and run the next job normally.
  std::atomic<int> sum{0};
  pool.run(10, [&](int t) { sum += t; });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPool, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1);
  std::vector<int> order;
  pool.run(4, [&](int t) { order.push_back(t); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));  // deterministic order
}

TEST(ThreadPool, BalancedRowPartitionBoundsAreValid) {
  // Heavily skewed rows: all the nnz in the first rows.
  std::vector<offset_t> row_ptr = {0, 1000, 1900, 1950, 1980, 1990,
                                   1995, 1998, 2000};
  const auto bounds = balanced_row_partition(row_ptr, 8, 4);
  ASSERT_EQ(bounds.size(), 5u);
  EXPECT_EQ(bounds.front(), 0);
  EXPECT_EQ(bounds.back(), 8);
  for (std::size_t i = 1; i < bounds.size(); ++i)
    EXPECT_LE(bounds[i - 1], bounds[i]);
  // The first chunk must not swallow everything: each boundary tracks an
  // nnz quartile.
  EXPECT_EQ(bounds[1], 1);  // 1000 of 2000 nnz sit in row 0
}

TEST(ThreadPool, ResolveThreadsHonoursEnvOverride) {
  unsetenv("BLOCKTRI_THREADS");
  EXPECT_EQ(resolve_threads(3), 3);
  EXPECT_EQ(resolve_threads(-5), 1);
  EXPECT_GE(resolve_threads(0), 1);  // hardware_concurrency, at least 1
  setenv("BLOCKTRI_THREADS", "6", 1);
  EXPECT_EQ(resolve_threads(1), 6);
  EXPECT_EQ(resolve_threads(0), 6);
  setenv("BLOCKTRI_THREADS", "garbage", 1);
  EXPECT_EQ(resolve_threads(2), 2);  // invalid values are ignored
  setenv("BLOCKTRI_THREADS", "0", 1);
  EXPECT_EQ(resolve_threads(2), 2);
  unsetenv("BLOCKTRI_THREADS");
}

// --- Kernel equivalence ----------------------------------------------------

TEST(ParallelKernels, LevelSetMatchesSerialBitwise) {
  for (const auto& tm : large_matrices()) {
    SCOPED_TRACE(tm.name);
    const Csr<double> L = tm.build();
    const auto b = gen::random_rhs<double>(L.nrows, 31);
    std::vector<double> want(static_cast<std::size_t>(L.nrows));
    const LevelSetSolver<double> serial(L);
    serial.solve(b.data(), want.data());
    for (const int t : kThreadCounts) {
      SCOPED_TRACE(t);
      ThreadPool pool(t);
      const LevelSetSolver<double> par(L, &pool);
      std::vector<double> got(static_cast<std::size_t>(L.nrows), -1.0);
      par.solve(b.data(), got.data(), nullptr, &pool);
      EXPECT_EQ(got, want);  // disjoint writes — bitwise deterministic
    }
  }
}

TEST(ParallelKernels, SyncFreeMatchesSerialNormwise) {
  for (const auto& tm : large_matrices()) {
    SCOPED_TRACE(tm.name);
    const Csr<double> L = tm.build();
    const auto b = gen::random_rhs<double>(L.nrows, 32);
    std::vector<double> want(static_cast<std::size_t>(L.nrows));
    const SyncFreeSolver<double> serial(L);
    serial.solve(b.data(), want.data());
    for (const int t : kThreadCounts) {
      SCOPED_TRACE(t);
      ThreadPool pool(t);
      const SyncFreeSolver<double> par(L, &pool);
      std::vector<double> got(static_cast<std::size_t>(L.nrows), -1.0);
      par.solve(b.data(), got.data(), nullptr, &pool);
      EXPECT_TRUE(VectorsNear(got, want, default_tol<double>()));
    }
  }
}

TEST(ParallelKernels, DiagonalMatchesSerialBitwise) {
  const Csr<double> L = gen::diagonal(20000, 33);
  std::vector<double> diag(static_cast<std::size_t>(L.nrows));
  for (index_t i = 0; i < L.nrows; ++i)
    diag[static_cast<std::size_t>(i)] =
        L.val[static_cast<std::size_t>(L.row_ptr[static_cast<std::size_t>(i)])];
  const DiagonalSolver<double> solver(diag);
  const auto b = gen::random_rhs<double>(L.nrows, 34);
  std::vector<double> want(static_cast<std::size_t>(L.nrows));
  solver.solve(b.data(), want.data());
  for (const int t : kThreadCounts) {
    SCOPED_TRACE(t);
    ThreadPool pool(t);
    std::vector<double> got(static_cast<std::size_t>(L.nrows), -1.0);
    solver.solve(b.data(), got.data(), nullptr, &pool);
    EXPECT_EQ(got, want);
  }
}

TEST(ParallelKernels, SpmvKernelsMatchSerialBitwise) {
  for (const auto& tm : large_matrices()) {
    SCOPED_TRACE(tm.name);
    const Csr<double> A = tm.build();
    const Dcsr<double> D = csr_to_dcsr(A);
    const auto x = gen::random_rhs<double>(A.ncols, 35);
    const auto y0 = gen::random_rhs<double>(A.nrows, 36);
    auto run_all = [&](ThreadPool* pool) {
      std::vector<std::vector<double>> outs;
      for (int k = 0; k < 4; ++k) {
        std::vector<double> y = y0;
        switch (k) {
          case 0: spmv_scalar_csr(A, x.data(), y.data(), nullptr, pool); break;
          case 1: spmv_vector_csr(A, x.data(), y.data(), nullptr, pool); break;
          case 2: spmv_scalar_dcsr(D, x.data(), y.data(), nullptr, pool); break;
          case 3: spmv_vector_dcsr(D, x.data(), y.data(), nullptr, pool); break;
        }
        outs.push_back(std::move(y));
      }
      return outs;
    };
    const auto want = run_all(nullptr);
    for (const int t : kThreadCounts) {
      SCOPED_TRACE(t);
      ThreadPool pool(t);
      const auto got = run_all(&pool);
      for (int k = 0; k < 4; ++k) {
        SCOPED_TRACE(k);
        EXPECT_EQ(got[static_cast<std::size_t>(k)],
                  want[static_cast<std::size_t>(k)]);
      }
    }
  }
}

// --- Parallel preprocessing ------------------------------------------------

TEST(ParallelPreprocess, CsrToCscMatchesSerialExactly) {
  const Csr<double> A = gen::banded(30000, 32, 8.0, 41);
  ASSERT_GE(A.nnz(), 4 * kHostParallelMinNnz);  // above the parallel gate
  const Csc<double> want = csr_to_csc(A);
  for (const int t : kThreadCounts) {
    SCOPED_TRACE(t);
    ThreadPool pool(t);
    const Csc<double> got = csr_to_csc(A, &pool);
    EXPECT_EQ(got.col_ptr, want.col_ptr);
    EXPECT_EQ(got.row_idx, want.row_idx);
    EXPECT_EQ(got.val, want.val);
  }
}

TEST(ParallelPreprocess, LevelSetsMatchSerialExactly) {
  const Csr<double> A = gen::random_levels(20000, 50, 4.0, 1.0, 42);
  const LevelSets want = compute_level_sets(A);
  ASSERT_GE(A.nrows, 2 * kHostParallelMinNnz);
  ASSERT_LE(want.nlevels, A.nrows / 4);  // above the grouping gate
  for (const int t : kThreadCounts) {
    SCOPED_TRACE(t);
    ThreadPool pool(t);
    const LevelSets got = compute_level_sets(A, &pool);
    EXPECT_EQ(got.nlevels, want.nlevels);
    EXPECT_EQ(got.level_of, want.level_of);
    EXPECT_EQ(got.level_ptr, want.level_ptr);
    EXPECT_EQ(got.level_item, want.level_item);
  }
}

TEST(ParallelPreprocess, RecursivePlanIsThreadCountInvariant) {
  const Csr<double> L = gen::random_levels(20000, 50, 4.0, 1.0, 43);
  PlannerOptions popt;
  popt.stop_rows = 2048;
  Csr<double> stored_serial;
  const BlockPlan want = plan_recursive(L, popt, &stored_serial);
  for (const int t : kThreadCounts) {
    SCOPED_TRACE(t);
    ThreadPool pool(t);
    Csr<double> stored_par;
    const BlockPlan got = plan_recursive(L, popt, &stored_par, &pool);
    EXPECT_EQ(got.new_of_old, want.new_of_old);
    EXPECT_EQ(got.tri_bounds, want.tri_bounds);
    EXPECT_EQ(got.depth_used, want.depth_used);
    EXPECT_EQ(stored_par.row_ptr, stored_serial.row_ptr);
    EXPECT_EQ(stored_par.col_idx, stored_serial.col_idx);
    EXPECT_EQ(stored_par.val, stored_serial.val);
  }
}

// --- Wave analysis ---------------------------------------------------------

TEST(StepWaves, ChainPlansStaySequential) {
  const Csr<double> L = gen::banded(4000, 8, 3.0, 51);
  PlannerOptions popt;
  popt.stop_rows = 512;
  Csr<double> stored;
  const BlockPlan plan = plan_recursive(L, popt, &stored);
  const auto waves = compute_step_waves(plan);
  // Without the empty-square list every square chains its neighbours: the
  // wave count equals the step count.
  std::size_t total = 0;
  for (const auto& w : waves) total += w.size();
  EXPECT_EQ(total, plan.steps.size());
  EXPECT_EQ(waves.size(), plan.steps.size());
}

TEST(StepWaves, EmptySquaresUnlockIndependentTriangles) {
  // Hand-built plan: two triangles chained by one square block.
  BlockPlan plan;
  plan.n = 4;
  plan.tri_bounds = {0, 2, 4};
  plan.squares = {{2, 4, 0, 2}};
  plan.steps = {{ExecStep::Kind::kTri, 0},
                {ExecStep::Kind::kSquare, 0},
                {ExecStep::Kind::kTri, 1}};
  // Square carries nonzeros: strict chain, three waves.
  auto waves = compute_step_waves(plan, {8});
  EXPECT_EQ(waves.size(), 3u);
  // Square is empty (block-diagonal matrix): both triangles share a wave.
  waves = compute_step_waves(plan, {0});
  ASSERT_EQ(waves.size(), 1u);
  EXPECT_EQ(waves[0].size(), 2u);
  EXPECT_EQ(waves[0][0].kind, ExecStep::Kind::kTri);
  EXPECT_EQ(waves[0][1].kind, ExecStep::Kind::kTri);
}

// --- BlockSolver end-to-end ------------------------------------------------

template <class T>
void expect_threaded_solver_matches_serial(const Csr<double>& Ld,
                                           BlockScheme scheme) {
  const Csr<T> L = gen::convert_values<T>(Ld);
  const auto b = gen::random_rhs<T>(L.nrows, 61);
  typename BlockSolver<T>::Options opt;
  opt.scheme = scheme;
  opt.planner.stop_rows = std::max<index_t>(64, L.nrows / 8);
  opt.planner.nseg = 4;
  const BlockSolver<T> serial(L, opt);
  const std::vector<T> want = serial.solve(b);
  for (const int t : {2, 4}) {
    SCOPED_TRACE(t);
    opt.threads = t;
    const BlockSolver<T> par(L, opt);
    EXPECT_EQ(par.threads(), t);
    EXPECT_FALSE(par.step_waves().empty());
    EXPECT_TRUE(VectorsNear(par.solve(b), want, default_tol<T>()));
    const SolveResult<T> checked = par.solve_checked(b);
    ASSERT_TRUE(checked.ok()) << checked.status.message();
    EXPECT_TRUE(VectorsNear(checked.x, want, default_tol<T>()));
  }
}

TEST(ParallelBlockSolver, MatchesSerialAcrossSchemesAndMatrices) {
  for (const auto& tm : test_matrices()) {
    SCOPED_TRACE(tm.name);
    const Csr<double> L = tm.build();
    for (const BlockScheme s :
         {BlockScheme::kRecursive, BlockScheme::kColumn, BlockScheme::kRow}) {
      SCOPED_TRACE(to_string(s));
      expect_threaded_solver_matches_serial<double>(L, s);
    }
  }
}

TEST(ParallelBlockSolver, FloatPathMatchesSerial) {
  for (const auto& tm : large_matrices()) {
    SCOPED_TRACE(tm.name);
    expect_threaded_solver_matches_serial<float>(tm.build(),
                                                 BlockScheme::kRecursive);
  }
}

TEST(ParallelBlockSolver, LargeMatricesEngageParallelPaths) {
  for (const auto& tm : large_matrices()) {
    SCOPED_TRACE(tm.name);
    expect_threaded_solver_matches_serial<double>(tm.build(),
                                                  BlockScheme::kRecursive);
  }
}

TEST(ParallelBlockSolver, EnvOverrideWinsOverOptions) {
  setenv("BLOCKTRI_THREADS", "2", 1);
  const Csr<double> L = gen::banded(2000, 8, 3.0, 62);
  BlockSolver<double>::Options opt;  // threads = 1
  const BlockSolver<double> solver(L, opt);
  EXPECT_EQ(solver.threads(), 2);
  unsetenv("BLOCKTRI_THREADS");
  const BlockSolver<double> serial(L, opt);
  EXPECT_EQ(serial.threads(), 1);
  const auto b = gen::random_rhs<double>(L.nrows, 63);
  EXPECT_TRUE(
      VectorsNear(solver.solve(b), serial.solve(b), default_tol<double>()));
}

TEST(ParallelBlockSolver, FallbackLadderEngagesUnderThreads) {
  const Csr<double> L = gen::random_levels(20000, 50, 4.0, 1.0, 64);
  const auto b = gen::random_rhs<double>(L.nrows, 65);
  BlockSolver<double>::Options opt;
  opt.planner.stop_rows = 2048;
  // Force sync-free so every block has the full three-rung ladder
  // (sync-free → level-set → serial); an adaptive level-set pick would leave
  // only two rungs and corrupt_attempts=2 would legitimately exhaust them.
  opt.adaptive = false;
  opt.forced_tri = TriKernelKind::kSyncFree;
  const BlockSolver<double> serial(L, opt);
  const std::vector<double> want = serial.solve(b);
  for (const int t : {2, 4}) {
    SCOPED_TRACE(t);
    opt.threads = t;
    opt.fault.tri_block = 0;
    for (int corrupt = 1; corrupt <= 2; ++corrupt) {
      SCOPED_TRACE(corrupt);
      opt.fault.corrupt_attempts = corrupt;
      const BlockSolver<double> par(L, opt);
      const SolveResult<double> res = par.solve_checked(b);
      ASSERT_TRUE(res.ok()) << res.status.message();
      EXPECT_FALSE(res.report.fallbacks.empty());
      EXPECT_TRUE(VectorsNear(res.x, want, default_tol<double>()));
    }
  }
}
