// Tests of the solve service (ISSUE 8): the coalescing queue must be
// *invisible* — a request served in a sixteen-wide panel returns bitwise
// the vector a lone solve() would have produced — and the socket front end
// must turn every kind of client misbehaviour (truncated frames, corrupt
// bytes, vanishing peers) into typed errors, never a crash or a hang.
//
// The concurrent tests run under ThreadSanitizer in the CI stress lane
// alongside test_resilience.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "blocktri.hpp"
#include "helpers.hpp"

namespace blocktri {
namespace {

using service::FrameHeader;
using service::Request;
using service::Response;
using service::ServiceOptions;
using service::SolveClient;
using service::SolveServer;
using service::SolveService;
using service::WireRequest;
using service::WireResponse;

using Opt = BlockSolver<double>::Options;

Csr<double> fixture() { return gen::grid2d(40, 25, 5); }  // n = 1000

Opt base_options(BlockScheme scheme = BlockScheme::kRecursive,
                 int threads = 1) {
  Opt opt;
  opt.scheme = scheme;
  opt.planner.stop_rows = 64;
  opt.planner.nseg = 4;
  opt.threads = threads;
  return opt;
}

bool BitwiseEqual(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

/// Submits `k` single-RHS requests from k concurrent client threads and
/// returns the k responses in submission order.
std::vector<Response> submit_concurrent(SolveService& service,
                                        std::uint64_t matrix_id,
                                        const std::vector<std::vector<double>>&
                                            rhs,
                                        const std::string& tenant = "default") {
  std::vector<Response> out(rhs.size());
  std::vector<std::thread> clients;
  clients.reserve(rhs.size());
  for (std::size_t i = 0; i < rhs.size(); ++i) {
    clients.emplace_back([&, i] {
      Request req;
      req.matrix_id = matrix_id;
      req.tenant = tenant;
      req.b = rhs[i];
      out[i] = service.solve(req);
    });
  }
  for (auto& t : clients) t.join();
  return out;
}

// --- Coalescing is bitwise invisible ---------------------------------------

// The acceptance matrix: schemes × k ∈ {1, 16} × threads ∈ {1, 4}. Every
// coalesced response must be bitwise identical to the lone solve() of its
// own right-hand side on a private solver.
TEST(ServiceCoalescing, PanelsBitwiseEqualSerialSolves) {
  const Csr<double> L = fixture();
  for (const BlockScheme scheme :
       {BlockScheme::kColumn, BlockScheme::kRow, BlockScheme::kRecursive,
        BlockScheme::kHbmc}) {
    for (const int threads : {1, 4}) {
      const Opt opt = base_options(scheme, threads);
      std::unique_ptr<BlockSolver<double>> reference;
      ASSERT_TRUE(BlockSolver<double>::create(L, opt, &reference).ok());

      for (const int k : {1, 16}) {
        ServiceOptions sopt;
        sopt.max_panel = 16;
        // Generous window: the leader lingers until all k requests queue
        // (k = max_panel dispatches immediately on the last arrival).
        sopt.batch_window_ms = k > 1 ? 2000.0 : 0.0;
        SolveService service(sopt);
        std::uint64_t id = 0;
        ASSERT_TRUE(service.register_matrix(L, opt, &id).ok());

        std::vector<std::vector<double>> rhs;
        for (int i = 0; i < k; ++i)
          rhs.push_back(gen::random_rhs<double>(
              L.nrows, 100 * static_cast<std::uint64_t>(k) + i));

        const std::vector<Response> got =
            submit_concurrent(service, id, rhs);
        for (int i = 0; i < k; ++i) {
          ASSERT_TRUE(got[i].status.ok())
              << to_string(scheme) << " t=" << threads << " k=" << k << ": "
              << got[i].status.to_string();
          EXPECT_TRUE(BitwiseEqual(got[i].x, reference->solve(rhs[i])))
              << to_string(scheme) << " t=" << threads << " k=" << k
              << " rhs " << i;
        }
        if (k == 16)
          EXPECT_GE(service.stats().max_panel_width, 2u)
              << "no coalescing happened at all";
      }
    }
  }
}

TEST(ServiceCoalescing, CheckedModePanelsMatchSolveChecked) {
  const Csr<double> L = fixture();
  Opt opt = base_options();
  opt.verify.enabled = true;
  std::unique_ptr<BlockSolver<double>> reference;
  ASSERT_TRUE(BlockSolver<double>::create(L, opt, &reference).ok());

  ServiceOptions sopt;
  sopt.max_panel = 8;
  sopt.batch_window_ms = 2000.0;
  sopt.checked = true;
  SolveService service(sopt);
  std::uint64_t id = 0;
  ASSERT_TRUE(service.register_matrix(L, opt, &id).ok());

  std::vector<std::vector<double>> rhs;
  for (int i = 0; i < 8; ++i)
    rhs.push_back(gen::random_rhs<double>(L.nrows, 7 + i));
  const std::vector<Response> got = submit_concurrent(service, id, rhs);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(got[i].status.ok()) << got[i].status.to_string();
    const SolveResult<double> ref = reference->solve_checked(rhs[i]);
    EXPECT_TRUE(BitwiseEqual(got[i].x, ref.x)) << "rhs " << i;
    EXPECT_TRUE(got[i].report.residual_checked);
    EXPECT_EQ(got[i].report.residual, ref.report.residual);
  }
}

TEST(ServiceCoalescing, CoalesceOffServesEveryRequestSolo) {
  ServiceOptions sopt;
  sopt.coalesce = false;
  SolveService service(sopt);
  std::uint64_t id = 0;
  ASSERT_TRUE(service.register_matrix(fixture(), base_options(), &id).ok());

  std::vector<std::vector<double>> rhs;
  for (int i = 0; i < 6; ++i)
    rhs.push_back(gen::random_rhs<double>(fixture().nrows, 50 + i));
  const std::vector<Response> got = submit_concurrent(service, id, rhs);
  for (const Response& r : got) {
    ASSERT_TRUE(r.status.ok()) << r.status.to_string();
    EXPECT_EQ(r.panel_width, 1);
  }
  EXPECT_EQ(service.stats().max_panel_width, 1u);
  EXPECT_EQ(service.stats().coalesced_requests, 0u);
}

// Sustained concurrent traffic: many tenants, many rounds, every response
// verified. The TSan stress lane runs this to certify the queue/demux
// handshake data-race-free.
TEST(ServiceCoalescing, ConcurrentClientsAllReceiveTheirOwnSolution) {
  const Csr<double> L = fixture();
  const Opt opt = base_options();
  std::unique_ptr<BlockSolver<double>> reference;
  ASSERT_TRUE(BlockSolver<double>::create(L, opt, &reference).ok());

  ServiceOptions sopt;
  sopt.max_panel = 4;
  sopt.batch_window_ms = 5.0;
  SolveService service(sopt);
  std::uint64_t id = 0;
  ASSERT_TRUE(service.register_matrix(L, opt, &id).ok());

  constexpr int kClients = 8;
  constexpr int kRounds = 5;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < kRounds; ++r) {
        Request req;
        req.matrix_id = id;
        req.tenant = "tenant-" + std::to_string(c % 3);
        req.b = gen::random_rhs<double>(L.nrows,
                                        1000 + c * kRounds + r);
        const Response resp = service.solve(req);
        if (!resp.status.ok() ||
            !BitwiseEqual(resp.x, reference->solve(req.b)))
          mismatches.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0);

  const service::ServiceStats st = service.stats();
  EXPECT_EQ(st.requests, static_cast<std::uint64_t>(kClients * kRounds));
  std::uint64_t tenant_requests = 0;
  for (const char* t : {"tenant-0", "tenant-1", "tenant-2"})
    tenant_requests += service.tenant_stats(t).requests;
  EXPECT_EQ(tenant_requests, st.requests);
}

// --- Admission and deadlines -----------------------------------------------

TEST(ServiceAdmission, UnknownMatrixAndWrongSizeAreTypedErrors) {
  SolveService service;
  std::uint64_t id = 0;
  ASSERT_TRUE(service.register_matrix(fixture(), base_options(), &id).ok());

  Request req;
  req.matrix_id = id + 99;
  req.b = gen::random_rhs<double>(fixture().nrows, 1);
  EXPECT_EQ(service.solve(req).status.code(), StatusCode::kInvalidArgument);

  req.matrix_id = id;
  req.b.resize(7);
  EXPECT_EQ(service.solve(req).status.code(), StatusCode::kInvalidArgument);
}

// An already-expired deadline must be rejected before anything is queued —
// and in particular before any traffic reaches the shared plan cache, whose
// hit-failure ledger could otherwise quarantine a perfectly good plan.
TEST(ServiceAdmission, ExpiredDeadlineRejectedWithoutPoisoningTheCache) {
  SolveService service;
  std::uint64_t id = 0;
  ASSERT_TRUE(service.register_matrix(fixture(), base_options(), &id).ok());

  // Warm request so the cache has an entry worth protecting.
  Request warm;
  warm.matrix_id = id;
  warm.b = gen::random_rhs<double>(fixture().nrows, 2);
  ASSERT_TRUE(service.solve(warm).status.ok());
  const PlanCacheStats before = service.cache().stats();

  Request dead;
  dead.matrix_id = id;
  dead.tenant = "latecomer";
  dead.b = gen::random_rhs<double>(fixture().nrows, 3);
  dead.deadline_ms = 1e-9;  // expires the instant it is armed
  const Response resp = service.solve(dead);
  EXPECT_EQ(resp.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(resp.panel_width, 0);  // never rode a panel
  EXPECT_TRUE(resp.x.empty());

  const PlanCacheStats after = service.cache().stats();
  EXPECT_EQ(after.hits, before.hits);
  EXPECT_EQ(after.misses, before.misses);
  EXPECT_EQ(after.quarantined, before.quarantined);
  EXPECT_EQ(after.tombstones, before.tombstones);
  EXPECT_EQ(service.tenant_stats("latecomer").deadline_misses, 1u);

  // The service is not poisoned either: the next request solves fine.
  EXPECT_TRUE(service.solve(warm).status.ok());
}

TEST(ServiceAdmission, ShutdownFailsNewRequestsTyped) {
  SolveService service;
  std::uint64_t id = 0;
  ASSERT_TRUE(service.register_matrix(fixture(), base_options(), &id).ok());
  service.shutdown();
  Request req;
  req.matrix_id = id;
  req.b = gen::random_rhs<double>(fixture().nrows, 4);
  EXPECT_EQ(service.solve(req).status.code(), StatusCode::kCancelled);
}

// --- Wire protocol (pure byte-buffer fault injection) ----------------------

WireRequest sample_request() {
  WireRequest r;
  r.matrix_id = 42;
  r.deadline_ms = 125.5;
  r.tenant = "tenant-7";
  r.b = {1.0, -2.5, 3.25, 0.0, 1e-300};
  return r;
}

TEST(Wire, RequestRoundTrips) {
  const WireRequest in = sample_request();
  const std::vector<std::uint8_t> buf = service::encode_request(in);
  WireRequest out;
  const Status st = service::decode_request(buf.data(), buf.size(), &out);
  ASSERT_TRUE(st.ok()) << st.to_string();
  EXPECT_EQ(out.matrix_id, in.matrix_id);
  EXPECT_EQ(out.deadline_ms, in.deadline_ms);
  EXPECT_EQ(out.tenant, in.tenant);
  EXPECT_TRUE(BitwiseEqual(out.b, in.b));
}

TEST(Wire, ResponseRoundTrips) {
  WireResponse in;
  in.code = StatusCode::kResidualTooLarge;
  in.message = "residual 1e-3 above tolerance";
  in.panel_width = 16;
  in.residual = 1e-3;
  in.refinements = 2;
  in.attempts = 3;
  in.degrades = 1;
  in.x = {4.0, 5.0, -6.0};
  const std::vector<std::uint8_t> buf = service::encode_response(in);
  WireResponse out;
  const Status st = service::decode_response(buf.data(), buf.size(), &out);
  ASSERT_TRUE(st.ok()) << st.to_string();
  EXPECT_EQ(out.code, in.code);
  EXPECT_EQ(out.message, in.message);
  EXPECT_EQ(out.panel_width, in.panel_width);
  EXPECT_EQ(out.residual, in.residual);
  EXPECT_EQ(out.refinements, in.refinements);
  EXPECT_EQ(out.attempts, in.attempts);
  EXPECT_EQ(out.degrades, in.degrades);
  EXPECT_TRUE(BitwiseEqual(out.x, in.x));
}

// Every strict prefix of a valid frame must decode to a typed failure —
// kTruncated once the header is intact — and never crash or over-read.
TEST(Wire, TruncationAtEveryLengthIsTyped) {
  const std::vector<std::uint8_t> buf =
      service::encode_request(sample_request());
  for (std::size_t len = 0; len < buf.size(); ++len) {
    WireRequest out;
    const Status st = service::decode_request(buf.data(), len, &out);
    ASSERT_FALSE(st.ok()) << "prefix of " << len << " bytes decoded";
    if (len >= service::kFrameHeaderBytes)
      EXPECT_EQ(st.code(), StatusCode::kTruncated) << "at length " << len;
  }
}

TEST(Wire, HeaderCorruptionIsTyped) {
  const std::vector<std::uint8_t> good =
      service::encode_request(sample_request());

  auto corrupt = [&](std::size_t offset, std::uint8_t value) {
    std::vector<std::uint8_t> bad = good;
    bad[offset] = value;
    WireRequest out;
    return service::decode_request(bad.data(), bad.size(), &out);
  };

  EXPECT_EQ(corrupt(0, 0xFF).code(), StatusCode::kBadFormat);  // magic
  EXPECT_EQ(corrupt(4, 99).code(), StatusCode::kVersionMismatch);
  EXPECT_EQ(corrupt(5, 0).code(), StatusCode::kBadFormat);  // unknown type

  // A hostile payload length larger than the buffer: typed, no allocation.
  std::vector<std::uint8_t> bad = good;
  const std::uint64_t huge = service::kMaxFramePayload + 1;
  std::memcpy(bad.data() + 8, &huge, sizeof(huge));
  WireRequest out;
  EXPECT_EQ(service::decode_request(bad.data(), bad.size(), &out).code(),
            StatusCode::kBadFormat);
}

// A frame whose header survives but whose payload is damaged (flipped
// endianness canary) decodes to kBadFormat with the framing intact — the
// server answers it with an error response instead of closing.
TEST(Wire, PayloadCanaryDetectsCorruption) {
  std::vector<std::uint8_t> bad = service::encode_request(sample_request());
  bad[service::kFrameHeaderBytes] ^= 0xFF;  // first canary byte
  WireRequest out;
  EXPECT_EQ(service::decode_request(bad.data(), bad.size(), &out).code(),
            StatusCode::kBadFormat);
}

// --- Socket front end ------------------------------------------------------

std::string test_socket_path(const char* tag) {
  return "/tmp/blocktri_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + ".sock";
}

class ServerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    L_ = fixture();
    ASSERT_TRUE(service_.register_matrix(L_, base_options(), &id_).ok());
    server_ = std::make_unique<SolveServer>(
        service_, test_socket_path(
                      ::testing::UnitTest::GetInstance()
                          ->current_test_info()
                          ->name()));
    const Status st = server_->start();
    ASSERT_TRUE(st.ok()) << st.to_string();
  }

  void TearDown() override { server_->stop(); }

  Csr<double> L_;
  SolveService service_;
  std::uint64_t id_ = 0;
  std::unique_ptr<SolveServer> server_;
};

TEST_F(ServerFixture, RoundTripOverTheSocket) {
  std::unique_ptr<BlockSolver<double>> reference;
  ASSERT_TRUE(BlockSolver<double>::create(L_, base_options(), &reference)
                  .ok());

  SolveClient client;
  ASSERT_TRUE(client.connect(server_->socket_path()).ok());
  WireRequest req;
  req.matrix_id = id_;
  req.tenant = "socket";
  req.b = gen::random_rhs<double>(L_.nrows, 9);
  WireResponse resp;
  const Status st = client.solve(req, &resp);
  ASSERT_TRUE(st.ok()) << st.to_string();
  EXPECT_EQ(resp.code, StatusCode::kOk);
  EXPECT_TRUE(BitwiseEqual(resp.x, reference->solve(req.b)));
  EXPECT_GE(resp.panel_width, 1u);

  // The same connection serves a second request.
  req.b = gen::random_rhs<double>(L_.nrows, 10);
  ASSERT_TRUE(client.solve(req, &resp).ok());
  EXPECT_TRUE(BitwiseEqual(resp.x, reference->solve(req.b)));
  // frames_served ticks just after the write the client already read, so
  // poll briefly instead of racing the server thread's counter update.
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (server_->stats().frames_served < 2 &&
         std::chrono::steady_clock::now() < give_up)
    std::this_thread::yield();
  EXPECT_EQ(server_->stats().frames_served, 2u);
}

TEST_F(ServerFixture, ConcurrentSocketClientsAllGetTheirOwnAnswer) {
  std::unique_ptr<BlockSolver<double>> reference;
  ASSERT_TRUE(BlockSolver<double>::create(L_, base_options(), &reference)
                  .ok());
  constexpr int kClients = 6;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      SolveClient client;
      if (!client.connect(server_->socket_path()).ok()) {
        mismatches.fetch_add(1);
        return;
      }
      WireRequest req;
      req.matrix_id = id_;
      req.b = gen::random_rhs<double>(L_.nrows, 20 + c);
      WireResponse resp;
      if (!client.solve(req, &resp).ok() || resp.code != StatusCode::kOk ||
          !BitwiseEqual(resp.x, reference->solve(req.b)))
        mismatches.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(service_.stats().requests,
            static_cast<std::uint64_t>(kClients));
}

// A request frame delivered in dribbles (header, pause, payload in two
// writes) must be reassembled by the server's read loop — short reads are
// the norm on stream sockets, not an error.
TEST_F(ServerFixture, InterleavedPartialWritesAreReassembled) {
  SolveClient client;
  ASSERT_TRUE(client.connect(server_->socket_path()).ok());
  WireRequest req;
  req.matrix_id = id_;
  req.b = gen::random_rhs<double>(L_.nrows, 31);
  const std::vector<std::uint8_t> frame = service::encode_request(req);

  const std::size_t cut1 = service::kFrameHeaderBytes;
  const std::size_t cut2 = frame.size() / 2;
  ASSERT_EQ(::send(client.fd(), frame.data(), cut1, 0),
            static_cast<ssize_t>(cut1));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_EQ(::send(client.fd(), frame.data() + cut1, cut2 - cut1, 0),
            static_cast<ssize_t>(cut2 - cut1));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_EQ(::send(client.fd(), frame.data() + cut2, frame.size() - cut2, 0),
            static_cast<ssize_t>(frame.size() - cut2));

  std::vector<std::uint8_t> reply;
  bool clean_eof = false;
  ASSERT_TRUE(service::read_frame(client.fd(), &reply, &clean_eof).ok());
  ASSERT_FALSE(clean_eof);
  WireResponse resp;
  ASSERT_TRUE(
      service::decode_response(reply.data(), reply.size(), &resp).ok());
  EXPECT_EQ(resp.code, StatusCode::kOk);
}

// A client that dies mid-frame: the server sees kTruncated, counts it, and
// keeps serving other connections.
TEST_F(ServerFixture, TruncatedFrameDoesNotKillTheServer) {
  {
    SolveClient client;
    ASSERT_TRUE(client.connect(server_->socket_path()).ok());
    WireRequest req;
    req.matrix_id = id_;
    req.b = gen::random_rhs<double>(L_.nrows, 32);
    const std::vector<std::uint8_t> frame = service::encode_request(req);
    const std::size_t half = frame.size() / 2;
    ASSERT_EQ(::send(client.fd(), frame.data(), half, 0),
              static_cast<ssize_t>(half));
    client.close();  // hang up mid-frame
  }

  // The server must still answer a well-formed request afterwards.
  SolveClient client;
  ASSERT_TRUE(client.connect(server_->socket_path()).ok());
  WireRequest req;
  req.matrix_id = id_;
  req.b = gen::random_rhs<double>(L_.nrows, 33);
  WireResponse resp;
  ASSERT_TRUE(client.solve(req, &resp).ok());
  EXPECT_EQ(resp.code, StatusCode::kOk);

  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (server_->stats().io_errors < 1 &&
         std::chrono::steady_clock::now() < give_up)
    std::this_thread::yield();
  EXPECT_GE(server_->stats().io_errors, 1u);
}

// Damaged framing (bad magic): the byte stream cannot be resynced, so the
// server counts a decode error and closes that connection — and nothing
// else.
TEST_F(ServerFixture, CorruptMagicClosesOnlyThatConnection) {
  SolveClient client;
  ASSERT_TRUE(client.connect(server_->socket_path()).ok());
  WireRequest req;
  req.matrix_id = id_;
  req.b = gen::random_rhs<double>(L_.nrows, 34);
  std::vector<std::uint8_t> frame = service::encode_request(req);
  frame[0] ^= 0xFF;
  ASSERT_EQ(::send(client.fd(), frame.data(), frame.size(), 0),
            static_cast<ssize_t>(frame.size()));

  std::vector<std::uint8_t> reply;
  bool clean_eof = false;
  const Status st = service::read_frame(client.fd(), &reply, &clean_eof);
  EXPECT_TRUE(clean_eof || !st.ok());  // server hung up without replying

  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (server_->stats().decode_errors < 1 &&
         std::chrono::steady_clock::now() < give_up)
    std::this_thread::yield();
  EXPECT_GE(server_->stats().decode_errors, 1u);

  SolveClient fresh;
  ASSERT_TRUE(fresh.connect(server_->socket_path()).ok());
  WireResponse resp;
  ASSERT_TRUE(fresh.solve(req, &resp).ok());
  EXPECT_EQ(resp.code, StatusCode::kOk);
}

// Intact framing, damaged payload (flipped canary): the server answers with
// a typed error response and the connection stays usable.
TEST_F(ServerFixture, PayloadDecodeFailureGetsATypedReplyAndKeepsServing) {
  SolveClient client;
  ASSERT_TRUE(client.connect(server_->socket_path()).ok());
  WireRequest req;
  req.matrix_id = id_;
  req.b = gen::random_rhs<double>(L_.nrows, 35);
  std::vector<std::uint8_t> frame = service::encode_request(req);
  frame[service::kFrameHeaderBytes] ^= 0xFF;  // canary
  ASSERT_EQ(::send(client.fd(), frame.data(), frame.size(), 0),
            static_cast<ssize_t>(frame.size()));

  std::vector<std::uint8_t> reply;
  bool clean_eof = false;
  ASSERT_TRUE(service::read_frame(client.fd(), &reply, &clean_eof).ok());
  ASSERT_FALSE(clean_eof);
  WireResponse resp;
  ASSERT_TRUE(
      service::decode_response(reply.data(), reply.size(), &resp).ok());
  EXPECT_EQ(resp.code, StatusCode::kBadFormat);

  // Same connection, good frame: served normally.
  WireResponse good;
  ASSERT_TRUE(client.solve(req, &good).ok());
  EXPECT_EQ(good.code, StatusCode::kOk);
  EXPECT_GE(server_->stats().decode_errors, 1u);
}

// A client that submits a valid request and vanishes before the response:
// the response write fails typed (kIoError, no SIGPIPE) and the server
// carries on.
TEST_F(ServerFixture, ClientDisconnectMidSolveIsATypedIoError) {
  {
    SolveClient client;
    ASSERT_TRUE(client.connect(server_->socket_path()).ok());
    WireRequest req;
    req.matrix_id = id_;
    req.b = gen::random_rhs<double>(L_.nrows, 36);
    const std::vector<std::uint8_t> frame = service::encode_request(req);
    ASSERT_EQ(::send(client.fd(), frame.data(), frame.size(), 0),
              static_cast<ssize_t>(frame.size()));
    client.close();  // gone before the solve finishes
  }

  // The write failure is observable and the server still serves.
  SolveClient fresh;
  ASSERT_TRUE(fresh.connect(server_->socket_path()).ok());
  WireRequest req;
  req.matrix_id = id_;
  req.b = gen::random_rhs<double>(L_.nrows, 37);
  WireResponse resp;
  ASSERT_TRUE(fresh.solve(req, &resp).ok());
  EXPECT_EQ(resp.code, StatusCode::kOk);
}

TEST(ServerLifecycle, StopUnblocksIdleConnectionsAndUnlinksTheSocket) {
  SolveService service;
  std::uint64_t id = 0;
  ASSERT_TRUE(service.register_matrix(fixture(), base_options(), &id).ok());
  const std::string path = test_socket_path("lifecycle");
  SolveServer server(service, path);
  ASSERT_TRUE(server.start().ok());

  SolveClient idle;
  ASSERT_TRUE(idle.connect(path).ok());  // connected, never sends a frame
  server.stop();                         // must not hang on the idle reader

  SolveClient late;
  EXPECT_FALSE(late.connect(path).ok());  // socket file is gone
}

}  // namespace
}  // namespace blocktri
