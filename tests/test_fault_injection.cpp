// Deterministic fault-injection harness. Every test mutates a valid matrix
// or .mtx byte stream and asserts the pipeline yields a typed Status (with
// location info) or a residual-verified solve — never a crash, never a
// silently wrong x. The ladder tests force per-block kernel failures via
// Options::FaultInjection and assert the degradation is visible in the
// SolveReport.
#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <sstream>
#include <string>

#include "core/solver.hpp"
#include "gen/generators.hpp"
#include "helpers.hpp"
#include "sparse/convert.hpp"
#include "sparse/mm_io.hpp"
#include "sparse/sanitize.hpp"
#include "sptrsv/serial.hpp"

namespace blocktri {
namespace {

using blocktri::testing::default_tol;
using blocktri::testing::VectorsNear;

// A small but structurally non-trivial lower triangle, serialised to .mtx.
Csr<double> fixture_matrix() { return gen::banded(60, 5, 2.0, 42); }

std::string fixture_mtx() {
  std::ostringstream os;
  write_matrix_market(os, fixture_matrix());
  return os.str();
}

Status parse(const std::string& text, Coo<double>* out) {
  std::istringstream is(text);
  return try_read_matrix_market(is, out);
}

// Full hardened pipeline: parse -> sanitize -> build -> checked solve.
// Returns the first non-ok status, or Ok with the verified solution in *x.
Status pipeline(const std::string& text, std::vector<double>* x) {
  Coo<double> coo;
  if (Status st = parse(text, &coo); !st.ok()) return st;
  SanitizePolicy policy;
  policy.strip_upper = true;
  policy.fill_missing_diagonal = true;
  Csr<double> L;
  if (Status st = sanitize(coo, policy, &L, nullptr); !st.ok()) return st;
  std::unique_ptr<BlockSolver<double>> solver;
  typename BlockSolver<double>::Options opt;
  opt.planner.stop_rows = 16;
  if (Status st = BlockSolver<double>::create(L, opt, &solver); !st.ok())
    return st;
  const auto b = gen::random_rhs<double>(L.nrows, 7);
  SolveResult<double> res = solver->solve_checked(b);
  if (!res.ok()) return res.status;
  EXPECT_TRUE(res.report.residual_checked);
  EXPECT_LE(res.report.residual, res.report.tolerance);
  *x = std::move(res.x);
  return Status::Ok();
}

// ---- Corruption modes 1-9: .mtx byte-stream mutations -> typed errors ----

TEST(FaultInjection, MtxTruncatedEntryStream) {
  std::string text = fixture_mtx();
  // Cut the last third of the entry lines.
  text.resize(text.rfind('\n', text.size() * 2 / 3) + 1);
  Coo<double> out;
  const Status st = parse(text, &out);
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_GT(st.location(), 2);
  EXPECT_NE(st.message().find("truncated"), std::string::npos);
}

TEST(FaultInjection, MtxMissingSizeLine) {
  Coo<double> out;
  const Status st =
      parse("%%MatrixMarket matrix coordinate real general\n% only comments\n",
            &out);
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_NE(st.message().find("size line"), std::string::npos);
}

TEST(FaultInjection, MtxCorruptBanner) {
  std::string text = fixture_mtx();
  text[3] = 'X';  // %%MXtrixMarket...
  Coo<double> out;
  const Status st = parse(text, &out);
  EXPECT_EQ(st.code(), StatusCode::kBadFormat);
  EXPECT_EQ(st.location(), 1);
}

TEST(FaultInjection, MtxMangledSizeLine) {
  Coo<double> out;
  const Status st = parse(
      "%%MatrixMarket matrix coordinate real general\n4 x 7\n", &out);
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_EQ(st.location(), 2);
}

TEST(FaultInjection, MtxOutOfBoundsIndex) {
  Coo<double> out;
  const Status st = parse(
      "%%MatrixMarket matrix coordinate real general\n3 3 2\n"
      "1 1 1.0\n9 1 1.0\n",
      &out);
  EXPECT_EQ(st.code(), StatusCode::kOutOfBounds);
  EXPECT_EQ(st.location(), 4);
}

TEST(FaultInjection, MtxMissingValueField) {
  Coo<double> out;
  const Status st = parse(
      "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n2 2\n",
      &out);
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_EQ(st.location(), 4);
}

TEST(FaultInjection, MtxNonNumericValue) {
  Coo<double> out;
  const Status st = parse(
      "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 fast\n",
      &out);
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_EQ(st.location(), 3);
}

TEST(FaultInjection, MtxInjectedNanValue) {
  Coo<double> out;
  const Status st = parse(
      "%%MatrixMarket matrix coordinate real general\n2 2 2\n"
      "1 1 1.0\n2 2 nan\n",
      &out);
  EXPECT_EQ(st.code(), StatusCode::kNonFinite);
  EXPECT_EQ(st.location(), 4);
}

TEST(FaultInjection, MtxInjectedInfValue) {
  Coo<double> out;
  const Status st = parse(
      "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 -inf\n",
      &out);
  EXPECT_EQ(st.code(), StatusCode::kNonFinite);
  EXPECT_EQ(st.location(), 3);
}

// Mode 10: byte-level truncation sweep. Every prefix of a valid file must
// either parse (short prefixes of the entry section can still satisfy a
// smaller nnz? no — nnz is fixed, so all proper prefixes fail) or produce a
// typed error. The assertion is "typed status, never a crash or hang".
TEST(FaultInjection, MtxTruncationSweepNeverCrashes) {
  const std::string text = fixture_mtx();
  for (std::size_t cut = 0; cut < text.size(); cut += 37) {
    Coo<double> out;
    const Status st = parse(text.substr(0, cut), &out);
    EXPECT_FALSE(st.ok()) << "prefix of " << cut << " bytes parsed as valid";
    EXPECT_NE(st.code(), StatusCode::kInternal);
  }
  Coo<double> out;
  EXPECT_TRUE(parse(text, &out).ok());
}

// ---- Modes 11-12: repairable stream defects -> verified-correct solve ----

TEST(FaultInjection, MtxShuffledEntriesSolveVerified) {
  // Reverse the entry lines: out-of-order input must still produce a
  // residual-verified solve through the sanitize pass.
  const std::string text = fixture_mtx();
  std::istringstream is(text);
  std::string header, sizes, line;
  std::getline(is, header);
  std::getline(is, sizes);
  std::vector<std::string> entries;
  while (std::getline(is, line)) entries.push_back(line);
  std::ostringstream os;
  os << header << '\n' << sizes << '\n';
  for (auto it = entries.rbegin(); it != entries.rend(); ++it)
    os << *it << '\n';

  std::vector<double> x, x_ref;
  ASSERT_TRUE(pipeline(os.str(), &x).ok());
  ASSERT_TRUE(pipeline(text, &x_ref).ok());
  EXPECT_TRUE(VectorsNear(x, x_ref, default_tol<double>()));
}

TEST(FaultInjection, MtxDuplicatedEntriesSolveVerified) {
  // Split one entry's value across two duplicate lines; the coalescing
  // sanitize pass must restore the original matrix exactly.
  const auto L = fixture_matrix();
  auto coo = csr_to_coo(L);
  const double v = coo.val[10];
  coo.val[10] = v / 3.0;
  coo.row.push_back(coo.row[10]);
  coo.col.push_back(coo.col[10]);
  coo.val.push_back(2.0 * v / 3.0);

  SanitizePolicy policy;
  Csr<double> repaired;
  SanitizeReport rep;
  ASSERT_TRUE(sanitize(coo, policy, &repaired, &rep).ok());
  EXPECT_EQ(rep.duplicates_coalesced, 1);

  BlockSolver<double> solver(repaired, {});
  const auto b = gen::random_rhs<double>(L.nrows, 11);
  const auto res = solver.solve_checked(b);
  ASSERT_TRUE(res.ok()) << res.status.to_string();
  EXPECT_TRUE(
      VectorsNear(res.x, sptrsv_serial(L, b), default_tol<double>()));
}

// ---- Modes 13-16: in-memory matrix corruption -> typed errors ----

TEST(FaultInjection, ZeroedPivotRejectedWithRow) {
  auto L = fixture_matrix();
  const index_t row = 17;
  L.val[static_cast<std::size_t>(L.row_ptr[row + 1] - 1)] = 0.0;
  std::unique_ptr<BlockSolver<double>> solver;
  const Status st = BlockSolver<double>::create(L, {}, &solver);
  EXPECT_EQ(st.code(), StatusCode::kZeroPivot);
  EXPECT_EQ(st.location(), row);
  EXPECT_EQ(solver, nullptr);
  // The throwing constructor carries the same typed status.
  try {
    BlockSolver<double> s(L, {});
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.status().code(), StatusCode::kZeroPivot);
    EXPECT_EQ(e.status().location(), row);
  }
}

TEST(FaultInjection, RemovedDiagonalRejectedWithRow) {
  auto coo = csr_to_coo(fixture_matrix());
  Coo<double> mutated;
  mutated.nrows = coo.nrows;
  mutated.ncols = coo.ncols;
  const index_t row = 23;
  for (std::size_t k = 0; k < coo.val.size(); ++k) {
    if (coo.row[k] == row && coo.col[k] == row) continue;  // drop pivot
    mutated.row.push_back(coo.row[k]);
    mutated.col.push_back(coo.col[k]);
    mutated.val.push_back(coo.val[k]);
  }
  std::unique_ptr<BlockSolver<double>> solver;
  const Status st =
      BlockSolver<double>::create(coo_to_csr(mutated), {}, &solver);
  EXPECT_EQ(st.code(), StatusCode::kSingularRow);
  EXPECT_EQ(st.location(), row);
}

TEST(FaultInjection, InjectedUpperEntryRejected) {
  auto coo = csr_to_coo(fixture_matrix());
  coo.row.push_back(5);
  coo.col.push_back(40);
  coo.val.push_back(1.0);
  std::unique_ptr<BlockSolver<double>> solver;
  const Status st =
      BlockSolver<double>::create(coo_to_csr(coo), {}, &solver);
  EXPECT_EQ(st.code(), StatusCode::kNotTriangular);
  EXPECT_EQ(st.location(), 5);
}

TEST(FaultInjection, NanMatrixValueRejectedWithRow) {
  auto L = fixture_matrix();
  L.val[static_cast<std::size_t>(L.row_ptr[31])] =
      std::numeric_limits<double>::quiet_NaN();
  std::unique_ptr<BlockSolver<double>> solver;
  const Status st = BlockSolver<double>::create(L, {}, &solver);
  EXPECT_EQ(st.code(), StatusCode::kNonFinite);
  EXPECT_EQ(st.location(), 31);
}

// ---- Modes 17-18: rhs corruption -> typed errors, no exception ----

TEST(FaultInjection, WrongRhsSizeTyped) {
  BlockSolver<double> solver(fixture_matrix(), {});
  const auto res = solver.solve_checked(std::vector<double>(13, 1.0));
  EXPECT_EQ(res.status.code(), StatusCode::kInvalidArgument);
}

TEST(FaultInjection, NanRhsTypedWithIndex) {
  const auto L = fixture_matrix();
  BlockSolver<double> solver(L, {});
  auto b = gen::random_rhs<double>(L.nrows, 3);
  b[41] = std::numeric_limits<double>::infinity();
  const auto res = solver.solve_checked(b);
  EXPECT_EQ(res.status.code(), StatusCode::kNonFinite);
  EXPECT_EQ(res.status.location(), 41);
}

// ---- Modes 19-21: per-block kernel failure -> fallback ladder ----

template <class T>
typename BlockSolver<T>::Options ladder_options(int corrupt_attempts) {
  typename BlockSolver<T>::Options opt;
  opt.planner.stop_rows = 16;  // several triangular blocks
  opt.adaptive = false;        // pin the primary kernel for determinism
  opt.forced_tri = TriKernelKind::kSyncFree;
  opt.fault.tri_block = 0;
  opt.fault.corrupt_attempts = corrupt_attempts;
  return opt;
}

TEST(FaultInjection, FallbackLadderEngagesLevelSet) {
  const auto L = fixture_matrix();
  const auto b = gen::random_rhs<double>(L.nrows, 5);
  BlockSolver<double> solver(L, ladder_options<double>(1));
  const auto res = solver.solve_checked(b);
  ASSERT_TRUE(res.ok()) << res.status.to_string();
  // The degradation is visible in the report and the answer is still right.
  ASSERT_EQ(res.report.fallbacks.size(), 1u);
  EXPECT_EQ(res.report.fallbacks[0].block, 0);
  EXPECT_EQ(res.report.fallbacks[0].from, TriKernelKind::kSyncFree);
  EXPECT_EQ(res.report.fallbacks[0].to, FallbackEvent::Rung::kLevelSet);
  EXPECT_TRUE(VectorsNear(res.x, sptrsv_serial(L, b), default_tol<double>()));
}

TEST(FaultInjection, FallbackLadderDegradesToSerial) {
  const auto L = fixture_matrix();
  const auto b = gen::random_rhs<double>(L.nrows, 6);
  BlockSolver<double> solver(L, ladder_options<double>(2));
  const auto res = solver.solve_checked(b);
  ASSERT_TRUE(res.ok()) << res.status.to_string();
  ASSERT_EQ(res.report.fallbacks.size(), 2u);
  EXPECT_EQ(res.report.fallbacks[0].to, FallbackEvent::Rung::kLevelSet);
  EXPECT_EQ(res.report.fallbacks[1].to, FallbackEvent::Rung::kSerial);
  EXPECT_TRUE(res.report.residual_checked);
  EXPECT_TRUE(VectorsNear(res.x, sptrsv_serial(L, b), default_tol<double>()));
}

TEST(FaultInjection, LadderExhaustionIsTypedNotACrash) {
  const auto L = fixture_matrix();
  const auto b = gen::random_rhs<double>(L.nrows, 8);
  BlockSolver<double> solver(L, ladder_options<double>(3));
  const auto res = solver.solve_checked(b);
  EXPECT_EQ(res.status.code(), StatusCode::kNumericalBreakdown);
  EXPECT_NE(res.status.message().find("block 0"), std::string::npos);
  EXPECT_EQ(res.report.fallbacks.size(), 2u);  // both rungs were tried
}

// ---- End-to-end: the hardened pipeline on a clean stream ----

TEST(FaultInjection, CleanPipelineResidualVerified) {
  std::vector<double> x;
  ASSERT_TRUE(pipeline(fixture_mtx(), &x).ok());
  const auto L = fixture_matrix();
  EXPECT_TRUE(VectorsNear(x, sptrsv_serial(L, gen::random_rhs<double>(
                                                  L.nrows, 7)),
                          default_tol<double>()));
}

}  // namespace
}  // namespace blocktri
