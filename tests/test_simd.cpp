// SIMD path equivalence suite: the vector lowering must be bitwise identical
// to the blocked-scalar lowering (they share the canonical 4-lane order, and
// the build disables FP contraction), the strict-scalar escape hatch must
// agree to rounding, and batched kernels must reproduce the single-RHS
// results column by column. Also covers the level-merge execution groups
// (BLOCKTRI_NO_LEVEL_MERGE) and path dispatch hygiene.
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "common/simd.hpp"
#include "core/solver.hpp"
#include "gen/generators.hpp"
#include "helpers.hpp"
#include "sptrsv/levelset.hpp"
#include "sptrsv/serial.hpp"

namespace blocktri {
namespace {

using blocktri::testing::default_tol;
using blocktri::testing::test_matrices;
using blocktri::testing::VectorsNear;

/// Forces a simd path for the duration of a scope.
struct PathGuard {
  explicit PathGuard(simd::Path p) { simd::force_path(p); }
  ~PathGuard() { simd::clear_forced_path(); }
};

/// Bitwise comparison (the vector and blocked-scalar paths share one
/// operation order, so == is the right predicate, not a tolerance).
template <class T>
::testing::AssertionResult VectorsBitwise(const std::vector<T>& a,
                                          const std::vector<T>& b) {
  if (a.size() != b.size())
    return ::testing::AssertionFailure()
           << "size mismatch: " << a.size() << " vs " << b.size();
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i] != b[i])
      return ::testing::AssertionFailure()
             << "entry " << i << ": " << static_cast<double>(a[i])
             << " != " << static_cast<double>(b[i]);
  return ::testing::AssertionSuccess();
}

template <class T>
std::vector<T> spmv_under(simd::Path p, const Csr<T>& a,
                          const std::vector<T>& x, std::vector<T> y) {
  PathGuard g(p);
  simd::spmv_update_rows(a.row_ptr.data(), a.col_idx.data(), a.val.data(),
                         static_cast<const index_t*>(nullptr), 0, a.nrows,
                         x.data(), y.data());
  return y;
}

template <class T>
std::vector<T> spmv_many_under(simd::Path p, const Csr<T>& a,
                               const std::vector<T>& x, std::vector<T> y,
                               index_t k) {
  PathGuard g(p);
  simd::spmv_update_rows_many(a.row_ptr.data(), a.col_idx.data(),
                              a.val.data(), static_cast<const index_t*>(nullptr),
                              0, a.nrows, x.data(), y.data(), 0, k, a.ncols,
                              a.nrows);
  return y;
}

template <class T>
std::vector<T> sptrsv_under(simd::Path p, const Csr<T>& a,
                            const std::vector<T>& b) {
  PathGuard g(p);
  std::vector<index_t> items(static_cast<std::size_t>(a.nrows));
  for (index_t i = 0; i < a.nrows; ++i)
    items[static_cast<std::size_t>(i)] = i;
  std::vector<T> x(b.size());
  simd::sptrsv_rows(a.row_ptr.data(), a.col_idx.data(), a.val.data(),
                    items.data(), 0, a.nrows, b.data(), x.data());
  return x;
}

template <class T>
void expect_kernel_paths_agree(const Csr<T>& a) {
  const index_t n = a.nrows;
  const auto x = gen::random_rhs<T>(a.ncols, 21);
  const auto y0 = gen::random_rhs<T>(n, 22);

  // SpMV update: vector == blocked bitwise; strict agrees to rounding.
  const auto y_blocked = spmv_under(simd::Path::kBlockedScalar, a, x, y0);
  EXPECT_TRUE(VectorsBitwise(spmv_under(simd::Path::kVector, a, x, y0),
                             y_blocked));
  EXPECT_TRUE(VectorsNear(spmv_under(simd::Path::kStrictScalar, a, x, y0),
                          y_blocked, default_tol<T>()));

  // Batched SpMV: bitwise across paths AND column c bitwise equal to the
  // single-RHS kernel applied to that column (the canonical order is shared).
  const index_t k = 16;
  std::vector<T> xp, yp0;
  for (index_t c = 0; c < k; ++c) {
    const auto xc = gen::random_rhs<T>(a.ncols, 100 + static_cast<int>(c));
    const auto yc = gen::random_rhs<T>(n, 200 + static_cast<int>(c));
    xp.insert(xp.end(), xc.begin(), xc.end());
    yp0.insert(yp0.end(), yc.begin(), yc.end());
  }
  const auto yp_blocked =
      spmv_many_under(simd::Path::kBlockedScalar, a, xp, yp0, k);
  EXPECT_TRUE(VectorsBitwise(
      spmv_many_under(simd::Path::kVector, a, xp, yp0, k), yp_blocked));
  EXPECT_TRUE(VectorsNear(
      spmv_many_under(simd::Path::kStrictScalar, a, xp, yp0, k), yp_blocked,
      default_tol<T>()));
  for (index_t c = 0; c < k; ++c) {
    const std::size_t xoff = static_cast<std::size_t>(c) * a.ncols;
    const std::size_t yoff = static_cast<std::size_t>(c) * n;
    const std::vector<T> xc(xp.begin() + static_cast<std::ptrdiff_t>(xoff),
                            xp.begin() +
                                static_cast<std::ptrdiff_t>(xoff + a.ncols));
    const std::vector<T> yc(yp0.begin() + static_cast<std::ptrdiff_t>(yoff),
                            yp0.begin() +
                                static_cast<std::ptrdiff_t>(yoff + n));
    const auto ycol = spmv_under(simd::Path::kVector, a, xc, yc);
    const std::vector<T> got(
        yp_blocked.begin() + static_cast<std::ptrdiff_t>(yoff),
        yp_blocked.begin() + static_cast<std::ptrdiff_t>(yoff + n));
    EXPECT_TRUE(VectorsBitwise(got, ycol)) << "column " << c;
  }
}

template <class T>
void expect_sptrsv_paths_agree(const Csr<T>& lower) {
  const auto b = gen::random_rhs<T>(lower.nrows, 33);
  const auto x_blocked = sptrsv_under(simd::Path::kBlockedScalar, lower, b);
  EXPECT_TRUE(VectorsBitwise(sptrsv_under(simd::Path::kVector, lower, b),
                             x_blocked));
  EXPECT_TRUE(VectorsNear(sptrsv_under(simd::Path::kStrictScalar, lower, b),
                          x_blocked, default_tol<T>()));
  EXPECT_TRUE(VectorsNear(sptrsv_serial(lower, b), x_blocked,
                          default_tol<T>()));
}

class SimdOnMatrix : public ::testing::TestWithParam<int> {};

TEST_P(SimdOnMatrix, SpmvPathsAgreeDouble) {
  const auto tm = test_matrices()[static_cast<std::size_t>(GetParam())];
  expect_kernel_paths_agree(tm.build());
}

TEST_P(SimdOnMatrix, SpmvPathsAgreeFloat) {
  const auto tm = test_matrices()[static_cast<std::size_t>(GetParam())];
  expect_kernel_paths_agree(gen::convert_values<float>(tm.build()));
}

TEST_P(SimdOnMatrix, SptrsvPathsAgreeDouble) {
  const auto tm = test_matrices()[static_cast<std::size_t>(GetParam())];
  expect_sptrsv_paths_agree(tm.build());
}

TEST_P(SimdOnMatrix, SptrsvPathsAgreeFloat) {
  const auto tm = test_matrices()[static_cast<std::size_t>(GetParam())];
  expect_sptrsv_paths_agree(gen::convert_values<float>(tm.build()));
}

INSTANTIATE_TEST_SUITE_P(
    AllMatrices, SimdOnMatrix,
    ::testing::Range(0, static_cast<int>(test_matrices().size())));

TEST(SimdDispatch, ForceAndClear) {
  simd::force_path(simd::Path::kStrictScalar);
  EXPECT_EQ(simd::active_path(), simd::Path::kStrictScalar);
  simd::force_path(simd::Path::kBlockedScalar);
  EXPECT_EQ(simd::active_path(), simd::Path::kBlockedScalar);
  simd::force_path(simd::Path::kVector);
  if (simd::vector_isa_available()) {
    EXPECT_EQ(simd::active_path(), simd::Path::kVector);
  } else {
    // Forcing a missing ISA clamps to the (bitwise identical) scalar order.
    EXPECT_EQ(simd::active_path(), simd::Path::kBlockedScalar);
  }
  simd::clear_forced_path();
  EXPECT_NE(simd::to_string(simd::active_path()), nullptr);
  EXPECT_NE(simd::vector_isa_name(), nullptr);
}

TEST(SimdDispatch, DivRowsPathsAgree) {
  const index_t n = 1031;  // odd length exercises the vector tail
  const auto b = gen::random_rhs<double>(n, 5);
  auto d = gen::random_rhs<double>(n, 6);
  for (auto& v : d) v += v < 0 ? -1.0 : 1.0;  // keep away from zero
  std::vector<double> x_scalar(b.size()), x_vector(b.size());
  {
    PathGuard g(simd::Path::kBlockedScalar);
    simd::div_rows(b.data(), d.data(), x_scalar.data(), n);
  }
  {
    PathGuard g(simd::Path::kVector);
    simd::div_rows(b.data(), d.data(), x_vector.data(), n);
  }
  EXPECT_TRUE(VectorsBitwise(x_vector, x_scalar));
}

// Whole-solver equivalence: the same BlockSolver must produce bitwise equal
// solutions on the vector and blocked-scalar paths, for single and batched
// solves, and rounding-level agreement against the strict-scalar loops.
template <class T>
void expect_solver_paths_agree(const Csr<T>& L) {
  typename BlockSolver<T>::Options o;
  o.planner.stop_rows = 200;
  const BlockSolver<T> solver(L, o);
  const auto b = gen::random_rhs<T>(L.nrows, 55);
  const index_t k = 5;
  std::vector<T> B;
  for (index_t c = 0; c < k; ++c) {
    const auto bc = gen::random_rhs<T>(L.nrows, 300 + static_cast<int>(c));
    B.insert(B.end(), bc.begin(), bc.end());
  }

  std::vector<T> x_blocked, x_vector, x_strict, X_blocked, X_vector;
  {
    PathGuard g(simd::Path::kBlockedScalar);
    x_blocked = solver.solve(b);
    X_blocked = solver.solve_many(B, k);
  }
  {
    PathGuard g(simd::Path::kVector);
    x_vector = solver.solve(b);
    X_vector = solver.solve_many(B, k);
  }
  {
    PathGuard g(simd::Path::kStrictScalar);
    x_strict = solver.solve(b);
  }
  EXPECT_TRUE(VectorsBitwise(x_vector, x_blocked));
  EXPECT_TRUE(VectorsBitwise(X_vector, X_blocked));
  EXPECT_TRUE(VectorsNear(x_strict, x_blocked, default_tol<T>()));
  EXPECT_TRUE(VectorsNear(x_blocked, sptrsv_serial(L, b), default_tol<T>()));
}

TEST(SimdSolver, PathsAgreeDouble) {
  for (const auto& tm : test_matrices()) {
    SCOPED_TRACE(tm.name);
    expect_solver_paths_agree(tm.build());
  }
}

TEST(SimdSolver, PathsAgreeFloat) {
  for (const auto& tm : test_matrices()) {
    SCOPED_TRACE(tm.name);
    expect_solver_paths_agree(gen::convert_values<float>(tm.build()));
  }
}

TEST(SimdSolver, RawPointerSolveMatchesVectorApi) {
  const auto L = gen::random_levels(1500, 24, 3.0, 1.0, 8);
  typename BlockSolver<double>::Options o;
  o.planner.stop_rows = 200;
  const BlockSolver<double> solver(L, o);
  const auto b = gen::random_rhs<double>(L.nrows, 77);
  const auto want = solver.solve(b);
  std::vector<double> got(b.size());
  solver.solve(b.data(), got.data());
  EXPECT_TRUE(VectorsBitwise(got, want));

  const index_t k = 3;
  std::vector<double> B;
  for (index_t c = 0; c < k; ++c) {
    const auto bc = gen::random_rhs<double>(L.nrows, 400 + static_cast<int>(c));
    B.insert(B.end(), bc.begin(), bc.end());
  }
  const auto Want = solver.solve_many(B, k);
  std::vector<double> Got(B.size());
  solver.solve_many(B.data(), Got.data(), k);
  EXPECT_TRUE(VectorsBitwise(Got, Want));
}

// Level merging must change only the grouping, never a floating-point
// operation: solves with merging disabled are bitwise identical.
TEST(LevelMerge, DisabledMatchesBitwise) {
  const auto L = gen::random_levels(2000, 500, 2.0, 1.0, 9);
  const auto b = gen::random_rhs<double>(L.nrows, 91);

  const LevelSetSolver<double> merged(L);
  ASSERT_EQ(unsetenv("BLOCKTRI_NO_LEVEL_MERGE"), 0);
  ASSERT_EQ(setenv("BLOCKTRI_NO_LEVEL_MERGE", "1", 1), 0);
  const LevelSetSolver<double> unmerged(L);
  ASSERT_EQ(unsetenv("BLOCKTRI_NO_LEVEL_MERGE"), 0);

  EXPECT_EQ(unmerged.exec_groups(), unmerged.levels().nlevels);
  EXPECT_LE(merged.exec_groups(), merged.levels().nlevels);
  // A 500-deep chain of narrow levels must actually merge something.
  EXPECT_LT(merged.exec_groups(), merged.levels().nlevels);

  std::vector<double> x_merged(b.size()), x_unmerged(b.size());
  merged.solve(b.data(), x_merged.data());
  unmerged.solve(b.data(), x_unmerged.data());
  EXPECT_TRUE(VectorsBitwise(x_merged, x_unmerged));

  const index_t k = 4;
  std::vector<double> B;
  for (index_t c = 0; c < k; ++c) {
    const auto bc = gen::random_rhs<double>(L.nrows, 500 + static_cast<int>(c));
    B.insert(B.end(), bc.begin(), bc.end());
  }
  std::vector<double> X_merged(B.size()), X_unmerged(B.size());
  merged.solve_many(B.data(), X_merged.data(), k, L.nrows);
  unmerged.solve_many(B.data(), X_unmerged.data(), k, L.nrows);
  EXPECT_TRUE(VectorsBitwise(X_merged, X_unmerged));
}

// The op counters are runtime-only and default off.
TEST(SolveStats, CountersBehindCollectStats) {
  const auto L = gen::random_levels(1500, 24, 3.0, 1.0, 8);
  const auto b = gen::random_rhs<double>(L.nrows, 13);

  BlockSolver<double>::Options off;
  off.planner.stop_rows = 200;
  const BlockSolver<double> s_off(L, off);
  const auto r_off = s_off.solve_checked(b);
  ASSERT_TRUE(r_off.ok());
  EXPECT_EQ(r_off.report.flops, 0);
  EXPECT_EQ(r_off.report.bytes, 0);
  EXPECT_EQ(r_off.report.levels_executed, 0);

  BlockSolver<double>::Options on = off;
  on.collect_stats = true;
  const BlockSolver<double> s_on(L, on);
  const auto r_on = s_on.solve_checked(b);
  ASSERT_TRUE(r_on.ok());
  EXPECT_EQ(r_on.report.flops, 2 * static_cast<std::int64_t>(L.nnz()));
  EXPECT_GT(r_on.report.bytes, 0);
  EXPECT_GE(r_on.report.levels_merged, 0);
  // collect_stats is not plan-affecting: same fingerprint either way.
  EXPECT_EQ(BlockSolver<double>::options_fingerprint(off),
            BlockSolver<double>::options_fingerprint(on));

  const auto rm = s_on.solve_many_checked(b, 1);
  ASSERT_TRUE(rm.ok());
  ASSERT_EQ(rm.reports.size(), 1u);
  EXPECT_EQ(rm.reports[0].flops, r_on.report.flops);
}

}  // namespace
}  // namespace blocktri
