// BlockSolver integration tests: correctness of all four schemes on every
// structural family and precision, ablation modes, simulation consistency,
// multi-rhs reuse, and preprocessing statistics.
#include <gtest/gtest.h>

#include "core/solver.hpp"
#include "gen/generators.hpp"
#include "helpers.hpp"
#include "sptrsv/serial.hpp"

namespace blocktri {
namespace {

using blocktri::testing::default_tol;
using blocktri::testing::test_matrices;
using blocktri::testing::VectorsNear;

template <class T>
typename BlockSolver<T>::Options opts(BlockScheme scheme,
                                      index_t stop_rows = 200,
                                      index_t nseg = 4) {
  typename BlockSolver<T>::Options o;
  o.scheme = scheme;
  o.planner.stop_rows = stop_rows;
  o.planner.nseg = nseg;
  return o;
}

// Cross product: scheme x structural family x precision (via two TESTs).
class SolverOnMatrix
    : public ::testing::TestWithParam<std::tuple<BlockScheme, int>> {};

TEST_P(SolverOnMatrix, MatchesSerialDouble) {
  const auto [scheme, mat_idx] = GetParam();
  const auto tm = test_matrices()[static_cast<std::size_t>(mat_idx)];
  const auto L = tm.build();
  const auto b = gen::random_rhs<double>(L.nrows, 101);
  BlockSolver<double> solver(L, opts<double>(scheme));
  EXPECT_TRUE(
      VectorsNear(solver.solve(b), sptrsv_serial(L, b), default_tol<double>()))
      << tm.name;
}

TEST_P(SolverOnMatrix, MatchesSerialFloat) {
  const auto [scheme, mat_idx] = GetParam();
  const auto tm = test_matrices()[static_cast<std::size_t>(mat_idx)];
  const auto Lf = gen::convert_values<float>(tm.build());
  const auto b = gen::random_rhs<float>(Lf.nrows, 102);
  BlockSolver<float> solver(Lf, opts<float>(scheme));
  EXPECT_TRUE(
      VectorsNear(solver.solve(b), sptrsv_serial(Lf, b), default_tol<float>()))
      << tm.name;
}

TEST_P(SolverOnMatrix, SimulatedSolveMatchesPlainSolve) {
  const auto [scheme, mat_idx] = GetParam();
  const auto tm = test_matrices()[static_cast<std::size_t>(mat_idx)];
  const auto L = tm.build();
  const auto b = gen::random_rhs<double>(L.nrows, 103);
  BlockSolver<double> solver(L, opts<double>(scheme));

  const auto gpu = sim::titan_rtx();
  sim::CacheModel cache(gpu.cache_bytes, gpu.cache_line_bytes,
                        gpu.cache_assoc);
  sim::SolveReport rep;
  BlockSolveBreakdown bd;
  const auto xs = solver.solve_simulated(b, gpu, &cache, &rep, &bd);
  EXPECT_EQ(xs, solver.solve(b));  // simulation must not perturb numerics
  EXPECT_GT(rep.ns, 0.0);
  EXPECT_EQ(rep.flops, 2 * L.nnz());
  // The tri/spmv breakdown accounts for all time.
  EXPECT_NEAR(bd.tri_ns + bd.spmv_ns, rep.ns, 1e-6 * rep.ns + 1e-9);
  EXPECT_EQ(bd.spmv_kernels, static_cast<int>(solver.plan().squares.size()));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SolverOnMatrix,
    ::testing::Combine(::testing::Values(BlockScheme::kColumn,
                                         BlockScheme::kRow,
                                         BlockScheme::kRecursive,
                                         BlockScheme::kHbmc),
                       ::testing::Range(0, static_cast<int>(
                                               test_matrices().size()))),
    [](const ::testing::TestParamInfo<std::tuple<BlockScheme, int>>& info) {
      std::string s = to_string(std::get<0>(info.param));
      for (auto& c : s)
        if (c == '-') c = '_';
      return s + "_" +
             test_matrices()[static_cast<std::size_t>(
                                 std::get<1>(info.param))].name;
    });

TEST(BlockSolver, ForcedKernelsStillCorrect) {
  const auto L = gen::kkt_structure(3000, 13, 3.0, 7);
  const auto b = gen::random_rhs<double>(3000, 104);
  const auto want = sptrsv_serial(L, b);
  for (const auto tri :
       {TriKernelKind::kLevelSet, TriKernelKind::kSyncFree,
        TriKernelKind::kCusparseLike}) {
    for (const auto sq :
         {SpmvKernelKind::kScalarCsr, SpmvKernelKind::kVectorCsr,
          SpmvKernelKind::kScalarDcsr, SpmvKernelKind::kVectorDcsr}) {
      auto o = opts<double>(BlockScheme::kRecursive, 300);
      o.adaptive = false;
      o.forced_tri = tri;
      o.forced_square = sq;
      BlockSolver<double> solver(L, o);
      EXPECT_TRUE(VectorsNear(solver.solve(b), want, default_tol<double>()))
          << to_string(tri) << "/" << to_string(sq);
      // Every block really uses the forced kinds. Empty squares are exempt:
      // they skip selection entirely and carry the canonical scalar-CSR
      // marking (the executors never run them).
      for (const auto& info : solver.tri_info())
        EXPECT_EQ(info.kind, tri);
      for (const auto& info : solver.square_info())
        if (info.nnz > 0) EXPECT_EQ(info.kind, sq);
    }
  }
}

TEST(BlockSolver, ReorderOffStillCorrect) {
  const auto L = gen::trace_network(2500, 9, 1.8, 0.45, 9);
  const auto b = gen::random_rhs<double>(2500, 105);
  auto o = opts<double>(BlockScheme::kRecursive, 250);
  o.planner.reorder = false;
  BlockSolver<double> solver(L, o);
  EXPECT_TRUE(
      VectorsNear(solver.solve(b), sptrsv_serial(L, b), default_tol<double>()));
}

TEST(BlockSolver, EmptySquareBlocksSkippedConsistently) {
  // A diagonal matrix under the column scheme plans squares with zero
  // nonzeros. They must carry the canonical scalar-CSR marking (selection
  // and DCSR conversion are skipped) and every executor — serial, waved,
  // checked, batched — must agree they are no-ops.
  const auto L = gen::diagonal(400, 21);
  auto o = opts<double>(BlockScheme::kColumn, 200, 4);
  o.threads = 2;
  BlockSolver<double> solver(L, o);
  ASSERT_FALSE(solver.square_info().empty());
  for (const auto& info : solver.square_info()) {
    EXPECT_EQ(info.nnz, 0);
    EXPECT_EQ(info.kind, SpmvKernelKind::kScalarCsr);
    EXPECT_EQ(info.empty_ratio, 1.0);
  }
  const auto b = gen::random_rhs<double>(L.nrows, 106);
  const auto want = sptrsv_serial(L, b);
  EXPECT_TRUE(VectorsNear(solver.solve(b), want, default_tol<double>()));
  const auto res = solver.solve_checked(b);
  ASSERT_TRUE(res.ok()) << res.status.to_string();
  EXPECT_TRUE(VectorsNear(res.x, want, default_tol<double>()));
  std::vector<double> B(b);
  B.insert(B.end(), b.begin(), b.end());
  const auto X = solver.solve_many(B, 2);
  EXPECT_TRUE(VectorsNear(
      std::vector<double>(X.begin(), X.begin() + L.nrows), want,
      default_tol<double>()));
}

TEST(BlockSolver, MultipleRhsReusePreprocessing) {
  const auto L = gen::grid2d(50, 40, 11);
  BlockSolver<double> solver(L, opts<double>(BlockScheme::kRecursive, 300));
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto b = gen::random_rhs<double>(L.nrows, 200 + seed);
    EXPECT_TRUE(VectorsNear(solver.solve(b), sptrsv_serial(L, b),
                            default_tol<double>()));
  }
}

TEST(BlockSolver, AdaptiveSelectsDiagonalKernelAfterReorder) {
  // A two-level matrix reordered by level sets: the first leaf should be a
  // pure diagonal block solved by the completely-parallel kernel.
  const auto L = gen::two_level_kkt(4000, 2000, 6.0, 13);
  BlockSolver<double> solver(L, opts<double>(BlockScheme::kRecursive, 500));
  bool saw_diag_kernel = false;
  for (const auto& info : solver.tri_info())
    if (info.kind == TriKernelKind::kCompletelyParallel) saw_diag_kernel = true;
  EXPECT_TRUE(saw_diag_kernel);
}

TEST(BlockSolver, NnzConservation) {
  const auto L = gen::power_law(3000, 2.1, 128, 5.0, 15);
  BlockSolver<double> solver(L, opts<double>(BlockScheme::kRecursive, 300));
  offset_t tri_nnz = 0;
  for (const auto& info : solver.tri_info()) tri_nnz += info.nnz;
  EXPECT_EQ(tri_nnz + solver.nnz_in_squares(), L.nnz());
  EXPECT_EQ(solver.nnz(), L.nnz());
  EXPECT_EQ(solver.n(), 3000);
}

TEST(BlockSolver, PreprocessStatsPopulated) {
  const auto L = gen::banded(5000, 32, 3.0, 17);
  BlockSolver<double> solver(L, opts<double>(BlockScheme::kRecursive, 500));
  const auto st = solver.preprocess_stats();
  EXPECT_GT(st.host_ops, L.nnz());  // at least one pass over the nonzeros
  EXPECT_GT(st.host_bytes, 0);
  EXPECT_GT(st.model_ms, 0.0);
}

TEST(BlockSolver, RejectsNonTriangularInput) {
  Coo<double> coo;
  coo.nrows = coo.ncols = 2;
  coo.row = {0, 0, 1, 1};
  coo.col = {0, 1, 0, 1};
  coo.val = {1, 1, 1, 1};
  const auto a = coo_to_csr(coo);
  EXPECT_THROW(BlockSolver<double>(a, opts<double>(BlockScheme::kRecursive)),
               Error);
}

TEST(BlockSolver, RejectsWrongRhsSize) {
  const auto L = gen::diagonal(10, 1);
  BlockSolver<double> solver(L, opts<double>(BlockScheme::kRecursive));
  EXPECT_THROW(solver.solve(std::vector<double>(9, 1.0)), Error);
}

TEST(BlockSolver, SingleElementSystem) {
  Csr<double> L;
  L.nrows = L.ncols = 1;
  L.row_ptr = {0, 1};
  L.col_idx = {0};
  L.val = {4.0};
  BlockSolver<double> solver(L, opts<double>(BlockScheme::kRecursive));
  const auto x = solver.solve({8.0});
  EXPECT_DOUBLE_EQ(x[0], 2.0);
}

TEST(BlockSolver, ColumnAndRowSchemesHonourNseg) {
  const auto L = gen::banded(1000, 8, 2.0, 19);
  for (const index_t nseg : {1, 2, 7, 16}) {
    BlockSolver<double> sc(L, opts<double>(BlockScheme::kColumn, 200, nseg));
    EXPECT_EQ(sc.plan().num_tri_blocks(), nseg);
    BlockSolver<double> sr(L, opts<double>(BlockScheme::kRow, 200, nseg));
    EXPECT_EQ(sr.plan().num_tri_blocks(), nseg);
    const auto b = gen::random_rhs<double>(1000, 300);
    EXPECT_TRUE(VectorsNear(sc.solve(b), sr.solve(b), default_tol<double>()));
  }
}

TEST(BlockSolver, WarmCacheIsFasterThanCold) {
  // The §2.2 locality argument, observable through the model: a second solve
  // with a warm cache must not be slower than the first cold one.
  const auto L = gen::kkt_structure(20000, 9, 4.0, 21);
  const auto b = gen::random_rhs<double>(20000, 301);
  BlockSolver<double> solver(L, opts<double>(BlockScheme::kRecursive, 2000));
  const auto gpu = sim::titan_rtx();
  sim::CacheModel cache(gpu.cache_bytes, gpu.cache_line_bytes,
                        gpu.cache_assoc);
  sim::SolveReport cold, warm;
  solver.solve_simulated(b, gpu, &cache, &cold);
  solver.solve_simulated(b, gpu, &cache, &warm);
  EXPECT_LE(warm.ns, cold.ns);
  EXPECT_GT(warm.cache_hits, cold.cache_hits);
}

TEST(BlockSolver, SolveCheckedMatchesSolveAndVerifiesResidual) {
  for (const auto& tm : test_matrices()) {
    const auto L = tm.build();
    const auto b = gen::random_rhs<double>(L.nrows, 401);
    BlockSolver<double> solver(L, opts<double>(BlockScheme::kRecursive));
    const auto res = solver.solve_checked(b);
    ASSERT_TRUE(res.ok()) << tm.name << ": " << res.status.to_string();
    EXPECT_TRUE(res.report.residual_checked) << tm.name;
    EXPECT_LE(res.report.residual, res.report.tolerance) << tm.name;
    EXPECT_TRUE(res.report.fallbacks.empty()) << tm.name;
    EXPECT_EQ(res.report.refinements, 0) << tm.name;
    EXPECT_TRUE(VectorsNear(res.x, solver.solve(b), default_tol<double>()))
        << tm.name;
  }
}

TEST(BlockSolver, SolveCheckedFloatPrecision) {
  const auto Lf = gen::convert_values<float>(gen::grid2d(40, 25, 5));
  const auto b = gen::random_rhs<float>(Lf.nrows, 402);
  BlockSolver<float> solver(Lf, opts<float>(BlockScheme::kRecursive));
  const auto res = solver.solve_checked(b);
  ASSERT_TRUE(res.ok()) << res.status.to_string();
  EXPECT_LE(res.report.residual, res.report.tolerance);
}

TEST(BlockSolver, SolveCheckedRequiresVerifyEnabled) {
  const auto L = gen::diagonal(10, 1);
  auto o = opts<double>(BlockScheme::kRecursive);
  o.verify.enabled = false;  // memory-lean mode: no retained matrices
  BlockSolver<double> solver(L, o);
  const auto res = solver.solve_checked(gen::random_rhs<double>(10, 403));
  EXPECT_EQ(res.status.code(), StatusCode::kInvalidArgument);
  // The unchecked path still works.
  EXPECT_EQ(solver.solve(gen::random_rhs<double>(10, 403)).size(), 10u);
}

TEST(BlockSolver, CreateFactoryReturnsTypedStatus) {
  std::unique_ptr<BlockSolver<double>> solver;
  ASSERT_TRUE(BlockSolver<double>::create(gen::diagonal(10, 1),
                                          opts<double>(BlockScheme::kRecursive),
                                          &solver)
                  .ok());
  ASSERT_NE(solver, nullptr);
  EXPECT_EQ(solver->solve(std::vector<double>(10, 1.0)).size(), 10u);

  Coo<double> coo;  // 2x3: not even square
  coo.nrows = 2;
  coo.ncols = 3;
  coo.row = {0, 1};
  coo.col = {0, 1};
  coo.val = {1, 1};
  std::unique_ptr<BlockSolver<double>> bad;
  EXPECT_EQ(BlockSolver<double>::create(coo_to_csr(coo),
                                        opts<double>(BlockScheme::kRecursive),
                                        &bad)
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(bad, nullptr);
}

TEST(BlockSolver, DeterministicSimulation) {
  const auto L = gen::power_law(5000, 2.0, 256, 4.0, 23);
  const auto b = gen::random_rhs<double>(5000, 302);
  BlockSolver<double> solver(L, opts<double>(BlockScheme::kRecursive, 500));
  const auto gpu = sim::titan_x();
  auto run = [&] {
    sim::CacheModel cache(gpu.cache_bytes, gpu.cache_line_bytes,
                          gpu.cache_assoc);
    sim::SolveReport rep;
    solver.solve_simulated(b, gpu, &cache, &rep);
    return rep.ns;
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

}  // namespace
}  // namespace blocktri
