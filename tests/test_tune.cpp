// Autotuner tests (ISSUE 7).
//
// Contracts under test:
//   * the calibration microbench produces a valid model, exactly once per
//     device (in-process cache), round-trippable through the .btcm codec
//     with every defect class mapped to a typed Status;
//   * Options::tune off => plans byte-for-byte identical to the untuned
//     build (artifact files compare equal, format version stays 1);
//   * tuned solvers solve correctly and are never slower than the default
//     adaptive plan under the exact simulator the search minimises;
//   * tuning is paid once: a tuned artifact reloaded via create_from_file or
//     a PlanCache hit performs zero re-tuning and zero level re-analysis;
//   * the satellite fixes: exact DCSR byte accounting in collect_stats, and
//     the level-merge width changing execution grouping but never results.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "analysis/levels.hpp"
#include "core/solver.hpp"
#include "gen/generators.hpp"
#include "persist/artifact.hpp"
#include "persist/plan_cache.hpp"
#include "sptrsv/levelset.hpp"
#include "tune/cost_model.hpp"
#include "tune/search.hpp"

namespace blocktri {
namespace {

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + "blocktri_tune_" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << path;
  return std::string(std::istreambuf_iterator<char>(is),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(os.good()) << path;
}

template <class T>
typename BlockSolver<T>::Options tuned_options(index_t stop_rows = 64) {
  typename BlockSolver<T>::Options opt;
  opt.planner.stop_rows = stop_rows;
  opt.tune.enabled = true;
  opt.tune.gpu = sim::titan_rtx();
  opt.tune.sa_iterations = 8;
  return opt;
}

// The shared in-process model: first use calibrates, everything after hits
// the cache, so the whole binary pays for one calibration.
const tune::CostModel& model() {
  return tune::ensure_cost_model(sim::titan_rtx());
}

// --- Cost model -------------------------------------------------------------

TEST(CostModel, CalibrationProducesValidModel) {
  const tune::CostModel& m = model();
  EXPECT_TRUE(m.valid);
  EXPECT_EQ(m.device, tune::device_fingerprint(sim::titan_rtx()));
  EXPECT_GE(m.preferred_merge_width, 1);
  // Cost curves predict positive times that grow with work.
  const double small =
      m.predict_tri(TriKernelKind::kSyncFree, 1000, 5000, 100);
  const double large =
      m.predict_tri(TriKernelKind::kSyncFree, 100000, 500000, 100);
  EXPECT_GT(small, 0.0);
  EXPECT_GT(large, small);
  EXPECT_GT(m.predict_square(SpmvKernelKind::kScalarCsr, 1000, 8000), 0.0);
}

TEST(CostModel, EnsureCalibratesOncePerDevice) {
  (void)model();  // may or may not be the first use in this binary
  const std::uint64_t before = tune::calibration_run_count();
  const tune::CostModel& a = tune::ensure_cost_model(sim::titan_rtx());
  const tune::CostModel& b = tune::ensure_cost_model(sim::titan_rtx());
  EXPECT_EQ(&a, &b);  // cached reference, not a refit
  EXPECT_EQ(tune::calibration_run_count(), before);
}

TEST(CostModel, FileRoundTrip) {
  const std::string path = tmp_path("model.btcm");
  ASSERT_TRUE(tune::save_cost_model(path, model()).ok());
  tune::CostModel loaded;
  ASSERT_TRUE(tune::load_cost_model(path, &loaded).ok());
  EXPECT_EQ(loaded.device, model().device);
  EXPECT_EQ(loaded.valid, model().valid);
  EXPECT_EQ(loaded.preferred_merge_width, model().preferred_merge_width);
  for (int k = 0; k < 4; ++k) {
    EXPECT_EQ(loaded.tri[k].per_nnz_ns, model().tri[k].per_nnz_ns);
    EXPECT_EQ(loaded.sq[k].per_row_ns, model().sq[k].per_row_ns);
  }
  std::remove(path.c_str());
}

TEST(CostModel, FileDefectsMapToTypedStatus) {
  const std::string path = tmp_path("defect.btcm");
  ASSERT_TRUE(tune::save_cost_model(path, model()).ok());
  const std::string good = read_file(path);
  tune::CostModel out;

  std::string bad = good;
  bad[0] = 'X';  // magic
  write_file(path, bad);
  EXPECT_EQ(tune::load_cost_model(path, &out).code(),
            StatusCode::kBadFormat);

  bad = good;
  bad[bad.size() - 3] ^= 0x40;  // payload bit rot
  write_file(path, bad);
  EXPECT_EQ(tune::load_cost_model(path, &out).code(),
            StatusCode::kChecksumMismatch);

  write_file(path, good.substr(0, good.size() / 2));  // mid-payload EOF
  EXPECT_EQ(tune::load_cost_model(path, &out).code(), StatusCode::kTruncated);

  write_file(path, good.substr(0, 6));  // mid-header EOF
  EXPECT_EQ(tune::load_cost_model(path, &out).code(), StatusCode::kTruncated);

  std::remove(path.c_str());
  EXPECT_EQ(tune::load_cost_model(path, &out).code(), StatusCode::kIoError);
}

// --- Tuned solves -----------------------------------------------------------

TEST(TunedSolve, MatchesUntunedSolution) {
  const Csr<double> L = gen::random_levels(4000, 80, 4.0, 1.0, 8);
  const auto b = gen::random_rhs<double>(L.nrows, 3);

  std::unique_ptr<BlockSolver<double>> plain, tuned;
  typename BlockSolver<double>::Options opt;
  opt.planner.stop_rows = 64;
  ASSERT_TRUE(BlockSolver<double>::create(L, opt, &plain).ok());
  ASSERT_TRUE(BlockSolver<double>::create(L, tuned_options<double>(), &tuned)
                  .ok());
  EXPECT_TRUE(tuned->tuned());

  const auto xa = plain->solve(b);
  const auto xb = tuned->solve(b);
  ASSERT_EQ(xa.size(), xb.size());
  double scale = 0.0;
  for (double v : xa) scale = std::max(scale, std::abs(v));
  for (std::size_t i = 0; i < xa.size(); ++i)
    EXPECT_NEAR(xa[i], xb[i], 1e-10 * scale) << "row " << i;
}

TEST(TunedSolve, NeverSlowerThanDefaultUnderSim) {
  // The search minimises exactly this measurement (warm simulated solve),
  // and the default plan is always in the candidate set, so tuned must win
  // or tie on every matrix.
  const sim::GpuSpec gpu = sim::titan_rtx();
  const Csr<double> mats[] = {
      gen::grid2d(60, 50, 5),
      gen::random_levels(5000, 100, 4.0, 1.0, 8),
      gen::chain_banded(4000, 8, 1.0, 11),
  };
  for (const Csr<double>& L : mats) {
    const auto b = gen::random_rhs<double>(L.nrows, 7);
    typename BlockSolver<double>::Options opt;
    opt.planner.stop_rows = 64;
    std::unique_ptr<BlockSolver<double>> plain, tuned;
    ASSERT_TRUE(BlockSolver<double>::create(L, opt, &plain).ok());
    auto topt = tuned_options<double>();
    topt.tune.gpu = gpu;
    ASSERT_TRUE(BlockSolver<double>::create(L, topt, &tuned).ok());

    const auto measure = [&](const BlockSolver<double>& s) {
      sim::CacheModel cache(gpu.cache_bytes, gpu.cache_line_bytes,
                            gpu.cache_assoc);
      sim::SolveReport warm, rep;
      s.solve_simulated(b, gpu, &cache, &warm);
      s.solve_simulated(b, gpu, &cache, &rep);
      return rep.ns;
    };
    const double def = measure(*plain);
    const double tun = measure(*tuned);
    EXPECT_LE(tun, def * 1.0001) << "n=" << L.nrows;
  }
}

// --- Tune off: byte-for-byte unchanged --------------------------------------

TEST(TuneOff, PlansAndArtifactsBitwiseIdentical) {
  const Csr<double> L = gen::grid2d(50, 40, 5);
  typename BlockSolver<double>::Options a, b;
  a.planner.stop_rows = 64;
  b.planner.stop_rows = 64;
  // Tune stays disabled but its sub-fields differ: none of them may leak
  // into the fingerprint or the plan.
  b.tune.sa_iterations = 999;
  b.tune.seed = 0xdeadbeefULL;

  std::unique_ptr<BlockSolver<double>> sa, sb;
  ASSERT_TRUE(BlockSolver<double>::create(L, a, &sa).ok());
  ASSERT_TRUE(BlockSolver<double>::create(L, b, &sb).ok());
  EXPECT_FALSE(sa->tuned());
  EXPECT_EQ(sa->level_merge_width(), kLevelMergeMaxWidth);

  const std::string pa = tmp_path("off_a.btpa");
  const std::string pb = tmp_path("off_b.btpa");
  ASSERT_TRUE(sa->save_artifact(pa).ok());
  ASSERT_TRUE(sb->save_artifact(pb).ok());
  const std::string fa = read_file(pa), fb = read_file(pb);
  EXPECT_EQ(fa, fb);
  // Untuned artifacts keep on-disk format version 1 — byte-identical to
  // pre-tuner builds, so older readers still accept them.
  ASSERT_GT(fa.size(), 8u);
  EXPECT_EQ(fa[4], 1);
  std::remove(pa.c_str());
  std::remove(pb.c_str());
}

// --- Persistence: tuning is paid once ---------------------------------------

TEST(TunePersist, TunedArtifactRoundTripsWithZeroRetuning) {
  const Csr<double> L = gen::random_levels(4000, 80, 4.0, 1.0, 8);
  const auto opt = tuned_options<double>();
  std::unique_ptr<BlockSolver<double>> cold;
  ASSERT_TRUE(BlockSolver<double>::create(L, opt, &cold).ok());
  ASSERT_TRUE(cold->tuned());

  const std::string path = tmp_path("tuned.btpa");
  ASSERT_TRUE(cold->save_artifact(path).ok());
  const std::string bytes = read_file(path);
  ASSERT_GT(bytes.size(), 8u);
  EXPECT_EQ(bytes[4], 2);  // tuned artifacts use format version 2

  const std::uint64_t tunes = tune::tuning_run_count();
  const std::uint64_t analyses = level_analysis_count();
  std::unique_ptr<BlockSolver<double>> warm;
  ASSERT_TRUE(BlockSolver<double>::create_from_file(path, L, opt, &warm).ok());
  const auto b = gen::random_rhs<double>(L.nrows, 5);
  const auto xw = warm->solve(b);
  EXPECT_EQ(tune::tuning_run_count(), tunes);      // zero re-tuning
  EXPECT_EQ(level_analysis_count(), analyses);     // zero re-analysis
  EXPECT_TRUE(warm->tuned());
  EXPECT_EQ(warm->level_merge_width(), cold->level_merge_width());
  EXPECT_EQ(xw, cold->solve(b));  // bitwise-identical rehydration
  std::remove(path.c_str());
}

TEST(TunePersist, PlanCacheHitDoesZeroRetuning) {
  const Csr<double> L = gen::grid2d(50, 40, 5);
  const auto opt = tuned_options<double>();
  PlanCache<double> cache;
  std::unique_ptr<BlockSolver<double>> first;
  ASSERT_TRUE(BlockSolver<double>::create(L, opt, &first, &cache).ok());

  const std::uint64_t tunes = tune::tuning_run_count();
  const std::uint64_t analyses = level_analysis_count();
  std::unique_ptr<BlockSolver<double>> second;
  ASSERT_TRUE(BlockSolver<double>::create(L, opt, &second, &cache).ok());
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(tune::tuning_run_count(), tunes);
  EXPECT_EQ(level_analysis_count(), analyses);
  EXPECT_TRUE(second->tuned());

  const auto b = gen::random_rhs<double>(L.nrows, 2);
  EXPECT_EQ(first->solve(b), second->solve(b));
}

TEST(TunePersist, FingerprintMismatchForcesColdRebuild) {
  const Csr<double> L = gen::grid2d(50, 40, 5);
  const auto opt = tuned_options<double>();
  std::unique_ptr<BlockSolver<double>> cold;
  ASSERT_TRUE(BlockSolver<double>::create(L, opt, &cold).ok());
  const std::string path = tmp_path("mismatch.btpa");
  ASSERT_TRUE(cold->save_artifact(path).ok());

  // Same artifact, different tuning-relevant options: rejected with a typed
  // status so the caller knows to rebuild cold rather than silently reusing
  // a plan tuned under other assumptions.
  std::unique_ptr<BlockSolver<double>> warm;
  auto other_seed = opt;
  other_seed.tune.seed = 1234;
  EXPECT_EQ(
      BlockSolver<double>::create_from_file(path, L, other_seed, &warm).code(),
      StatusCode::kInvalidArgument);

  auto tune_off = opt;
  tune_off.tune.enabled = false;
  EXPECT_EQ(
      BlockSolver<double>::create_from_file(path, L, tune_off, &warm).code(),
      StatusCode::kInvalidArgument);

  // The exact options still load.
  EXPECT_TRUE(BlockSolver<double>::create_from_file(path, L, opt, &warm).ok());
  std::remove(path.c_str());
}

TEST(TunePersist, PreTunerArtifactsStillLoad) {
  // An untuned artifact is a version-1 file with no tuning section — the
  // pre-PR format. It must rehydrate with tuning defaults.
  const Csr<double> L = gen::grid2d(50, 40, 5);
  typename BlockSolver<double>::Options opt;
  opt.planner.stop_rows = 64;
  std::unique_ptr<BlockSolver<double>> cold;
  ASSERT_TRUE(BlockSolver<double>::create(L, opt, &cold).ok());
  const std::string path = tmp_path("v1.btpa");
  ASSERT_TRUE(cold->save_artifact(path).ok());
  EXPECT_EQ(read_file(path)[4], 1);

  std::unique_ptr<BlockSolver<double>> warm;
  ASSERT_TRUE(BlockSolver<double>::create_from_file(path, L, opt, &warm).ok());
  EXPECT_FALSE(warm->tuned());
  EXPECT_EQ(warm->level_merge_width(), kLevelMergeMaxWidth);
  const auto b = gen::random_rhs<double>(L.nrows, 4);
  EXPECT_EQ(warm->solve(b), cold->solve(b));
  std::remove(path.c_str());
}

// --- Satellite: exact DCSR byte accounting ----------------------------------

TEST(CollectStats, DcsrSquareBytesCountRowIndirection) {
  // Hand-built 8x8 lower-triangular: two diagonal-only 4-row triangles and
  // one square block [4,8)x[0,4) with rows {4,6} non-empty (3 nnz). With
  // stop_rows=4 the recursive planner splits exactly at 4, and both tri
  // blocks are level-1, so the level-set reordering is the identity — the
  // block geometry below is exact.
  Csr<double> L;
  L.nrows = L.ncols = 8;
  L.row_ptr = {0, 1, 2, 3, 4, 7, 8, 10, 11};
  L.col_idx = {0, 1, 2, 3, 0, 1, 4, 5, 2, 6, 7};
  L.val = {2, 2, 2, 2, 0.5, 0.5, 2, 2, 0.5, 2, 2};

  typename BlockSolver<double>::Options opt;
  opt.planner.stop_rows = 4;
  opt.adaptive = false;
  opt.forced_tri = TriKernelKind::kSyncFree;
  opt.forced_square = SpmvKernelKind::kScalarDcsr;
  opt.collect_stats = true;
  std::unique_ptr<BlockSolver<double>> s;
  ASSERT_TRUE(BlockSolver<double>::create(L, opt, &s).ok());

  const auto b = gen::random_rhs<double>(8, 1);
  const auto res = s->solve_checked(b);
  ASSERT_TRUE(res.ok());

  // flops: 2 per nonzero, across both triangles (4+4 nnz) and the square (3).
  EXPECT_EQ(res.report.flops, 2 * 11);

  // bytes, from the accounting model: per nnz an (index, value) pair; per
  // iterated row a row_ptr entry plus an x read and a y write. The DCSR
  // square iterates only its 2 stored rows and additionally streams one
  // row id (index_t) per stored row — the satellite-2 fix under test.
  const std::int64_t idx_val =
      static_cast<std::int64_t>(sizeof(index_t) + sizeof(double));
  const std::int64_t row_over =
      static_cast<std::int64_t>(sizeof(offset_t) + 2 * sizeof(double));
  const std::int64_t tri_bytes = 2 * (4 * idx_val + 4 * row_over);
  const std::int64_t sq_bytes =
      3 * idx_val +
      2 * (row_over + static_cast<std::int64_t>(sizeof(index_t)));
  EXPECT_EQ(res.report.bytes, tri_bytes + sq_bytes);
}

// --- Satellite: level-merge width changes grouping, never results -----------

TEST(MergeWidth, ExecGroupsShrinkWithWidthResultsBitwise) {
  // Level widths [1,1,1,20,1,1,1]: a 3-chain, a 20-wide fan, a 3-chain.
  Csr<double> L;
  L.nrows = L.ncols = 26;
  L.row_ptr.push_back(0);
  const auto row = [&](std::vector<index_t> cols) {
    for (index_t c : cols) {
      L.col_idx.push_back(c);
      L.val.push_back(c == static_cast<index_t>(L.row_ptr.size()) - 1 ? 2.0
                                                                      : 0.5);
    }
    L.row_ptr.push_back(static_cast<offset_t>(L.col_idx.size()));
  };
  row({0});
  row({0, 1});
  row({1, 2});
  for (index_t r = 3; r < 23; ++r) row({2, r});  // the width-20 level
  row({3, 23});
  row({23, 24});
  row({24, 25});

  const auto b = gen::random_rhs<double>(26, 6);
  std::vector<double> x0(26), x16(26), x20(26);
  LevelSetSolver<double> s0(L, nullptr, 0);    // width < 1: merging off
  LevelSetSolver<double> s16(L, nullptr, 16);  // wide level breaks the run
  LevelSetSolver<double> s20(L, nullptr, 20);  // everything merges
  EXPECT_EQ(s0.exec_groups(), 7);
  EXPECT_EQ(s16.exec_groups(), 3);
  EXPECT_EQ(s20.exec_groups(), 1);
  s0.solve(b.data(), x0.data());
  s16.solve(b.data(), x16.data());
  s20.solve(b.data(), x20.data());
  EXPECT_EQ(x0, x16);
  EXPECT_EQ(x16, x20);
}

}  // namespace
}  // namespace blocktri
