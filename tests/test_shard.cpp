// Tests of the sharded multi-process solve (ISSUE 9). The headline contract
// is bitwise invisibility: a solve distributed over P worker processes
// returns byte-identical vectors to the single-process solve_many, for every
// blocking scheme, shard count and panel width. The failure contracts matter
// just as much: a SIGKILLed or hung worker is a *typed* kWorkerLost (never a
// hang), the shm segment can never leak (unlinked at creation), dead workers
// are reaped (no zombies) and respawned warm (zero level-set re-analysis),
// and the in-process fallback turns a lost epoch into a correct answer.
//
// Runs in the CI stress lane (ASan/UBSan/TSan) alongside test_resilience and
// test_service; the shm epoch protocol must be TSan-clean.

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "blocktri.hpp"
#include "common/io.hpp"
#include "helpers.hpp"
#include "shard/control.hpp"
#include "shard/shm.hpp"

namespace blocktri {
namespace {

using shard::CoordinatorStats;
using shard::ShardCoordinator;

using Opt = BlockSolver<double>::Options;

Csr<double> fixture() { return gen::grid2d(40, 25, 5); }  // n = 1000

template <class T = double>
typename BlockSolver<T>::Options base_options(
    BlockScheme scheme = BlockScheme::kRecursive) {
  typename BlockSolver<T>::Options opt;
  opt.scheme = scheme;
  opt.planner.stop_rows = 64;
  opt.planner.nseg = 4;
  opt.threads = 1;
  return opt;
}

template <class T>
std::vector<T> make_panel(index_t n, index_t k, unsigned seed) {
  Rng rng(seed);
  std::vector<T> B(static_cast<std::size_t>(n) * k);
  for (auto& v : B) v = static_cast<T>(rng.uniform(-1.0, 1.0));
  return B;
}

template <class T>
bool BitwiseEqual(const std::vector<T>& a, const std::vector<T>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(T)) == 0;
}

/// True when the (unlinked) segment name still resolves under /dev/shm —
/// the leak the create-then-unlink discipline makes impossible.
bool shm_name_visible(const std::string& name) {
  std::string path = "/dev/shm" + name;  // name starts with '/'
  return ::access(path.c_str(), F_OK) == 0;
}

/// Builds a base solver + coordinator pair. `mutate` tweaks the shard
/// options before the pool is forked.
template <class T>
void make_pool(const Csr<double>& lower_d,
               typename BlockSolver<T>::Options opt, int processes,
               std::unique_ptr<BlockSolver<T>>* solver,
               std::unique_ptr<ShardCoordinator<T>>* coord) {
  Csr<T> lower;
  if constexpr (std::is_same_v<T, double>) {
    lower = lower_d;
  } else {
    lower.nrows = lower_d.nrows;
    lower.ncols = lower_d.ncols;
    lower.row_ptr = lower_d.row_ptr;
    lower.col_idx = lower_d.col_idx;
    lower.val.assign(lower_d.val.begin(), lower_d.val.end());
  }
  opt.shard.processes = processes;
  ASSERT_TRUE(BlockSolver<T>::create(lower, opt, solver).ok());
  Status st = ShardCoordinator<T>::create(**solver, opt, coord);
  ASSERT_TRUE(st.ok()) << st.to_string();
}

// --- Shard planning ---------------------------------------------------------

TEST(ShardPlan, CutsSnapToTriBoundsAndCoverTheMatrix) {
  std::unique_ptr<BlockSolver<double>> solver;
  ASSERT_TRUE(BlockSolver<double>::create(fixture(), base_options(), &solver)
                  .ok());
  const PlanArtifact<double> art = solver->capture_artifact();
  for (int p : {1, 2, 4, 7}) {
    const std::vector<index_t> bounds = shard::compute_shard_cuts(art, p);
    ASSERT_GE(bounds.size(), 2u);
    EXPECT_LE(static_cast<int>(bounds.size()) - 1, p);
    EXPECT_EQ(bounds.front(), 0);
    EXPECT_EQ(bounds.back(), art.plan.n);
    for (std::size_t i = 1; i < bounds.size(); ++i) {
      EXPECT_LT(bounds[i - 1], bounds[i]);
      // Every cut lands on a triangular leaf boundary: no leaf is split.
      EXPECT_TRUE(std::find(art.plan.tri_bounds.begin(),
                            art.plan.tri_bounds.end(),
                            bounds[i]) != art.plan.tri_bounds.end())
          << "cut " << bounds[i] << " not at a tri bound";
    }
  }
}

TEST(ShardPlan, ShardCountClampsToLeafCount) {
  // One leaf: every requested shard count collapses to a single shard.
  std::unique_ptr<BlockSolver<double>> solver;
  ASSERT_TRUE(BlockSolver<double>::create(gen::dense_lower(5, 0.8, 15),
                                          base_options(), &solver)
                  .ok());
  const PlanArtifact<double> art = solver->capture_artifact();
  const std::vector<index_t> bounds = shard::compute_shard_cuts(art, 8);
  EXPECT_EQ(bounds.size(), 2u);
}

TEST(ShardPlan, SliceValidatesAndRoundTripsAsFormatV3) {
  std::unique_ptr<BlockSolver<double>> solver;
  ASSERT_TRUE(BlockSolver<double>::create(fixture(), base_options(), &solver)
                  .ok());
  const PlanArtifact<double> art = solver->capture_artifact();
  const std::vector<index_t> bounds = shard::compute_shard_cuts(art, 3);
  const int count = static_cast<int>(bounds.size()) - 1;
  ASSERT_GE(count, 2);

  const std::string path = ::testing::TempDir() + "shard_slice_rt.btpa";
  for (int i = 0; i < count; ++i) {
    PlanArtifact<double> slice =
        shard::slice_shard_artifact(art, bounds, i, art.options);
    EXPECT_TRUE(slice.shard);
    EXPECT_FALSE(slice.verify_captured);
    Status st = validate_artifact(slice);
    ASSERT_TRUE(st.ok()) << "shard " << i << ": " << st.to_string();

    ASSERT_TRUE(save_artifact(path, slice).ok());
    PlanArtifact<double> loaded;
    ASSERT_TRUE(load_artifact(path, &loaded).ok());
    EXPECT_TRUE(loaded.shard);
    EXPECT_EQ(loaded.shard_index, static_cast<std::uint32_t>(i));
    EXPECT_EQ(loaded.shard_row_begin, bounds[static_cast<std::size_t>(i)]);
    EXPECT_EQ(loaded.shard_row_end, bounds[static_cast<std::size_t>(i) + 1]);
    ASSERT_TRUE(validate_artifact(loaded).ok());
  }
  ::unlink(path.c_str());
}

TEST(ShardPlan, HbmcSliceCarriesColorBoundsThroughFormatV4) {
  // The color record rides the shared plan into every slice: a sharded HBMC
  // slice file stamps format 4 and rehydrates with the color bounds intact,
  // and the shard cuts themselves land on HBMC block bounds (all of which
  // are tri_bounds).
  std::unique_ptr<BlockSolver<double>> solver;
  ASSERT_TRUE(BlockSolver<double>::create(fixture(),
                                          base_options(BlockScheme::kHbmc),
                                          &solver)
                  .ok());
  const PlanArtifact<double> art = solver->capture_artifact();
  ASSERT_FALSE(art.plan.color_bounds.empty());
  const std::vector<index_t> bounds = shard::compute_shard_cuts(art, 3);
  ASSERT_GE(bounds.size(), 3u);

  const std::string path = ::testing::TempDir() + "shard_slice_hbmc.btpa";
  for (int i = 0; i + 1 < static_cast<int>(bounds.size()); ++i) {
    PlanArtifact<double> slice =
        shard::slice_shard_artifact(art, bounds, i, art.options);
    ASSERT_TRUE(validate_artifact(slice).ok()) << "shard " << i;
    ASSERT_TRUE(save_artifact(path, slice).ok());
    PlanArtifact<double> loaded;
    ASSERT_TRUE(load_artifact(path, &loaded).ok());
    EXPECT_EQ(loaded.plan.scheme, BlockScheme::kHbmc);
    EXPECT_EQ(loaded.plan.color_bounds, art.plan.color_bounds);
    EXPECT_EQ(loaded.plan.hbmc_block_rows, art.plan.hbmc_block_rows);
  }
  ::unlink(path.c_str());
}

TEST(ShardPlan, ValidateRejectsACutInsideALeaf) {
  std::unique_ptr<BlockSolver<double>> solver;
  ASSERT_TRUE(BlockSolver<double>::create(fixture(), base_options(), &solver)
                  .ok());
  const PlanArtifact<double> art = solver->capture_artifact();
  const std::vector<index_t> bounds = shard::compute_shard_cuts(art, 2);
  ASSERT_EQ(bounds.size(), 3u);
  PlanArtifact<double> slice =
      shard::slice_shard_artifact(art, bounds, 0, art.options);
  // Nudge the cut off the leaf boundary: the slice must stop validating.
  slice.shard_bounds[1] += 1;
  slice.shard_row_end += 1;
  EXPECT_FALSE(validate_artifact(slice).ok());
}

TEST(ShardPlan, LocalSchedulesPartitionThePlanExactly) {
  std::unique_ptr<BlockSolver<double>> solver;
  ASSERT_TRUE(BlockSolver<double>::create(fixture(), base_options(), &solver)
                  .ok());
  const PlanArtifact<double> art = solver->capture_artifact();
  const std::vector<index_t> bounds = shard::compute_shard_cuts(art, 4);
  const int count = static_cast<int>(bounds.size()) - 1;
  std::size_t tris = 0, squares = 0;
  for (int i = 0; i < count; ++i) {
    const PlanArtifact<double> slice =
        shard::slice_shard_artifact(art, bounds, i, art.options);
    for (const auto& wave : shard::build_local_schedule(slice))
      for (const shard::LocalStep& ls : wave) {
        if (ls.step.kind == ExecStep::Kind::kTri) {
          ++tris;
          EXPECT_GT(ls.publish, 0);
        } else {
          ++squares;
        }
      }
  }
  // Every triangular leaf runs exactly once across the pool; squares may
  // run on several shards (row slices) but never vanish entirely.
  EXPECT_EQ(tris, art.plan.tri_bounds.size() - 1);
  std::size_t square_steps = 0;
  for (const ExecStep& s : art.plan.steps)
    if (s.kind == ExecStep::Kind::kSquare) ++square_steps;
  EXPECT_GE(squares, square_steps);
}

// --- Bitwise equality -------------------------------------------------------

TEST(ShardSolve, BitwiseEqualAcrossSchemesShardsAndWidths) {
  const Csr<double> L = fixture();
  for (BlockScheme scheme :
       {BlockScheme::kColumn, BlockScheme::kRow, BlockScheme::kRecursive,
        BlockScheme::kHbmc}) {
    for (int p : {2, 4}) {
      std::unique_ptr<BlockSolver<double>> solver;
      std::unique_ptr<ShardCoordinator<double>> coord;
      make_pool<double>(L, base_options(scheme), p, &solver, &coord);
      ASSERT_EQ(coord->shard_count(), p);
      for (index_t k : {index_t{1}, index_t{16}}) {
        const std::vector<double> B =
            make_panel<double>(solver->n(), k, 77 + k);
        std::vector<double> want(B.size()), got(B.size());
        ASSERT_TRUE(solver->solve_many(B.data(), want.data(), k, SolveControls{}).ok());
        Status st = coord->solve_many(B.data(), got.data(), k);
        ASSERT_TRUE(st.ok()) << to_string(scheme) << " p=" << p << ": " << st.to_string();
        EXPECT_TRUE(BitwiseEqual(got, want))
            << to_string(scheme) << " p=" << p << " k=" << k;
      }
      // The warm-start proof: no worker ever re-ran level-set analysis.
      EXPECT_EQ(coord->stats().worker_level_analyses, 0u);
      EXPECT_EQ(coord->stats().fallbacks, 0u);
    }
  }
}

TEST(ShardSolve, BitwiseEqualInSinglePrecision) {
  std::unique_ptr<BlockSolver<float>> solver;
  std::unique_ptr<ShardCoordinator<float>> coord;
  make_pool<float>(fixture(), base_options<float>(), 2, &solver, &coord);
  const index_t k = 8;
  const std::vector<float> B = make_panel<float>(solver->n(), k, 31);
  std::vector<float> want(B.size()), got(B.size());
  ASSERT_TRUE(solver->solve_many(B.data(), want.data(), k, SolveControls{}).ok());
  ASSERT_TRUE(coord->solve_many(B.data(), got.data(), k).ok());
  EXPECT_TRUE(BitwiseEqual(got, want));
}

TEST(ShardSolve, GatherScatterFormMatchesContiguous) {
  std::unique_ptr<BlockSolver<double>> solver;
  std::unique_ptr<ShardCoordinator<double>> coord;
  make_pool<double>(fixture(), base_options(), 3, &solver, &coord);
  const index_t n = solver->n(), k = 5;
  const std::vector<double> B = make_panel<double>(n, k, 41);
  std::vector<double> want(B.size());
  ASSERT_TRUE(coord->solve_many(B.data(), want.data(), k).ok());

  std::vector<std::vector<double>> cols(k);
  std::vector<const double*> bs(k);
  std::vector<double*> xs(k);
  std::vector<std::vector<double>> xcols(k, std::vector<double>(n));
  for (index_t c = 0; c < k; ++c) {
    cols[c].assign(B.begin() + c * n, B.begin() + (c + 1) * n);
    bs[c] = cols[c].data();
    xs[c] = xcols[c].data();
  }
  ASSERT_TRUE(coord->solve_many(bs.data(), xs.data(), k).ok());
  for (index_t c = 0; c < k; ++c) {
    const std::vector<double> want_col(want.begin() + c * n,
                                       want.begin() + (c + 1) * n);
    EXPECT_TRUE(BitwiseEqual(xcols[c], want_col)) << "column " << c;
  }
}

TEST(ShardSolve, OverlapActuallyDefersBoundarySquares) {
  // On a banded matrix with several shards, at least some boundary squares
  // must flow through the watermark protocol (ready or deferred) — if this
  // is zero the overlap machinery is dead code.
  std::unique_ptr<BlockSolver<double>> solver;
  std::unique_ptr<ShardCoordinator<double>> coord;
  make_pool<double>(fixture(), base_options(), 4, &solver, &coord);
  const std::vector<double> B = make_panel<double>(solver->n(), 4, 9);
  std::vector<double> X(B.size());
  ASSERT_TRUE(coord->solve_many(B.data(), X.data(), 4).ok());
  const CoordinatorStats s = coord->stats();
  EXPECT_GT(s.halo_ready + s.halo_deferred, 0u);
}

// --- Argument and lifecycle contracts ---------------------------------------

TEST(ShardSolve, CreateRejectsBadProcessCounts) {
  std::unique_ptr<BlockSolver<double>> solver;
  Opt opt = base_options();
  ASSERT_TRUE(BlockSolver<double>::create(fixture(), opt, &solver).ok());
  std::unique_ptr<ShardCoordinator<double>> coord;
  opt.shard.processes = 0;
  EXPECT_EQ(ShardCoordinator<double>::create(*solver, opt, &coord).code(),
            StatusCode::kInvalidArgument);
  opt.shard.processes = shard::kMaxShards + 1;
  EXPECT_EQ(ShardCoordinator<double>::create(*solver, opt, &coord).code(),
            StatusCode::kInvalidArgument);
}

TEST(ShardSolve, PanelWiderThanMaxPanelIsRejected) {
  std::unique_ptr<BlockSolver<double>> solver;
  std::unique_ptr<ShardCoordinator<double>> coord;
  Opt opt = base_options();
  opt.shard.max_panel = 4;
  make_pool<double>(fixture(), opt, 2, &solver, &coord);
  const std::vector<double> B = make_panel<double>(solver->n(), 5, 3);
  std::vector<double> X(B.size());
  EXPECT_EQ(coord->solve_many(B.data(), X.data(), 5).code(),
            StatusCode::kInvalidArgument);
}

TEST(ShardSolve, ExpiredDeadlineIsTypedNotFallenBack) {
  std::unique_ptr<BlockSolver<double>> solver;
  std::unique_ptr<ShardCoordinator<double>> coord;
  make_pool<double>(fixture(), base_options(), 2, &solver, &coord);
  const std::vector<double> b = make_panel<double>(solver->n(), 1, 13);
  std::vector<double> x(b.size());
  SolveControls controls;
  controls.deadline = Deadline::after_ms(-1.0);
  EXPECT_EQ(coord->solve(b.data(), x.data(), controls).code(),
            StatusCode::kDeadlineExceeded);
  // A deadline is not a worker fault: the pool stays intact.
  EXPECT_EQ(coord->stats().fallbacks, 0u);
}

TEST(ShardSolve, ShmSegmentNeverVisibleAndDistinctAcrossCoordinators) {
  // Two live pools at once: the salted names must differ (collision
  // regression) and neither may appear in /dev/shm (unlinked at creation).
  std::unique_ptr<BlockSolver<double>> s1, s2;
  std::unique_ptr<ShardCoordinator<double>> c1, c2;
  make_pool<double>(fixture(), base_options(), 2, &s1, &c1);
  make_pool<double>(fixture(), base_options(), 2, &s2, &c2);
  EXPECT_NE(c1->shm_name(), c2->shm_name());
  EXPECT_FALSE(shm_name_visible(c1->shm_name()));
  EXPECT_FALSE(shm_name_visible(c2->shm_name()));

  const std::vector<double> B = make_panel<double>(s1->n(), 2, 21);
  std::vector<double> want(B.size()), x1(B.size()), x2(B.size());
  ASSERT_TRUE(s1->solve_many(B.data(), want.data(), 2, SolveControls{}).ok());
  ASSERT_TRUE(c1->solve_many(B.data(), x1.data(), 2).ok());
  ASSERT_TRUE(c2->solve_many(B.data(), x2.data(), 2).ok());
  EXPECT_TRUE(BitwiseEqual(x1, want));
  EXPECT_TRUE(BitwiseEqual(x2, want));
}

TEST(ShardSolve, DestructorLeavesNoChildrenBehind) {
  std::vector<pid_t> pids;
  {
    std::unique_ptr<BlockSolver<double>> solver;
    std::unique_ptr<ShardCoordinator<double>> coord;
    make_pool<double>(fixture(), base_options(), 3, &solver, &coord);
    pids = coord->worker_pids();
    ASSERT_EQ(pids.size(), 3u);
    for (pid_t pid : pids) ASSERT_GT(pid, 0);
  }
  // Post-destruction every worker is gone *and* reaped: a targeted waitpid
  // sees ECHILD (no zombie), and the pid no longer accepts signal 0 as our
  // child (it may be recycled by an unrelated process, so ECHILD from
  // waitpid is the authoritative check).
  for (pid_t pid : pids) {
    errno = 0;
    const pid_t r = ::waitpid(pid, nullptr, WNOHANG);
    EXPECT_EQ(r, -1);
    EXPECT_EQ(errno, ECHILD);
  }
}

// --- Fault injection: worker loss -------------------------------------------

TEST(ShardFault, KilledWorkerYieldsTypedWorkerLost) {
  std::unique_ptr<BlockSolver<double>> solver;
  std::unique_ptr<ShardCoordinator<double>> coord;
  Opt opt = base_options();
  opt.shard.fallback_inprocess = false;
  opt.shard.fault.kill_worker = 1;  // dies after its first local step
  opt.shard.fault.after_steps = 1;
  opt.shard.epoch_timeout_ms = 4000;
  make_pool<double>(fixture(), opt, 2, &solver, &coord);

  const std::vector<double> b = make_panel<double>(solver->n(), 1, 51);
  std::vector<double> x(b.size());
  const Status st = coord->solve(b.data(), x.data());
  EXPECT_EQ(st.code(), StatusCode::kWorkerLost) << st.to_string();
  EXPECT_GE(coord->stats().workers_lost, 1u);
  EXPECT_EQ(coord->stats().fallbacks, 0u);

  // The dead worker is reaped (its pid slot reads -1, no zombie) and the
  // segment never existed in the namespace to leak.
  const std::vector<pid_t> pids = coord->worker_pids();
  EXPECT_EQ(pids[1], -1);
  EXPECT_FALSE(shm_name_visible(coord->shm_name()));
}

TEST(ShardFault, FallbackRecoversTheEpochInProcess) {
  std::unique_ptr<BlockSolver<double>> solver;
  std::unique_ptr<ShardCoordinator<double>> coord;
  Opt opt = base_options();
  opt.shard.fallback_inprocess = true;
  opt.shard.fault.kill_worker = 0;
  opt.shard.fault.after_steps = 0;  // dies on its very first step
  opt.shard.epoch_timeout_ms = 4000;
  make_pool<double>(fixture(), opt, 2, &solver, &coord);

  const std::vector<double> b = make_panel<double>(solver->n(), 1, 52);
  std::vector<double> x(b.size()), want(b.size());
  ASSERT_TRUE(solver->solve(b.data(), want.data(), {}).ok());
  const Status st = coord->solve(b.data(), x.data());
  ASSERT_TRUE(st.ok()) << st.to_string();
  EXPECT_TRUE(BitwiseEqual(x, want));
  EXPECT_GE(coord->stats().fallbacks, 1u);
  EXPECT_GE(coord->stats().workers_lost, 1u);
}

TEST(ShardFault, ExternallyKilledWorkerIsRespawnedWarm) {
  std::unique_ptr<BlockSolver<double>> solver;
  std::unique_ptr<ShardCoordinator<double>> coord;
  Opt opt = base_options();
  opt.shard.fallback_inprocess = true;
  opt.shard.epoch_timeout_ms = 4000;
  make_pool<double>(fixture(), opt, 2, &solver, &coord);

  const std::vector<double> b = make_panel<double>(solver->n(), 1, 53);
  std::vector<double> x(b.size()), want(b.size());
  ASSERT_TRUE(solver->solve(b.data(), want.data(), {}).ok());
  ASSERT_TRUE(coord->solve(b.data(), x.data()).ok());

  // Kill a worker from outside, between epochs.
  const std::vector<pid_t> pids = coord->worker_pids();
  ASSERT_GT(pids[0], 0);
  ASSERT_EQ(::kill(pids[0], SIGKILL), 0);

  // The next epoch respawns it from its slice file — warm (no re-analysis)
  // — and solves correctly (directly or via fallback, depending on whether
  // the death is noticed before or during the epoch).
  ASSERT_TRUE(coord->solve(b.data(), x.data()).ok());
  EXPECT_TRUE(BitwiseEqual(x, want));
  // One more epoch to make sure the pool is fully healthy again.
  ASSERT_TRUE(coord->solve(b.data(), x.data()).ok());
  EXPECT_TRUE(BitwiseEqual(x, want));
  const CoordinatorStats s = coord->stats();
  EXPECT_GE(s.respawns, 1u);
  EXPECT_EQ(s.worker_level_analyses, 0u);  // respawn reran the warm path
  const std::vector<pid_t> fresh = coord->worker_pids();
  EXPECT_GT(fresh[0], 0);
  EXPECT_NE(fresh[0], pids[0]);
}

TEST(ShardFault, HungWorkerTripsTheEpochTimeoutNotAHang) {
  std::unique_ptr<BlockSolver<double>> solver;
  std::unique_ptr<ShardCoordinator<double>> coord;
  Opt opt = base_options();
  opt.shard.fallback_inprocess = false;
  opt.shard.fault.hang_worker = 0;
  opt.shard.fault.after_steps = 1;
  opt.shard.epoch_timeout_ms = 300;  // short: the test must stay fast
  make_pool<double>(fixture(), opt, 2, &solver, &coord);

  const std::vector<double> b = make_panel<double>(solver->n(), 1, 54);
  std::vector<double> x(b.size());
  const auto t0 = std::chrono::steady_clock::now();
  const Status st = coord->solve(b.data(), x.data());
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  EXPECT_EQ(st.code(), StatusCode::kWorkerLost) << st.to_string();
  EXPECT_LT(ms, 10000.0) << "epoch timeout failed to bound the hang";
}

TEST(ShardFault, WorkerLostStatusHasAName) {
  EXPECT_STREQ(status_code_name(StatusCode::kWorkerLost), "worker-lost");
}

// --- Service integration ----------------------------------------------------

TEST(ShardService, ShardedBackendServesCoalescedPanelsBitwise) {
  using service::Request;
  using service::Response;
  using service::ServiceOptions;
  using service::SolveService;

  ServiceOptions sopt;
  sopt.max_panel = 8;
  sopt.batch_window_ms = 5.0;
  SolveService svc(sopt);

  Opt opt = base_options();
  opt.shard.processes = 2;
  std::uint64_t id = 0;
  ASSERT_TRUE(svc.register_matrix(fixture(), opt, &id).ok());
  ASSERT_NE(svc.shard_backend(id), nullptr);
  EXPECT_EQ(svc.shard_backend(id)->shard_count(), 2);

  // Reference: the registered base solver, single process.
  const BlockSolver<double>* base = svc.solver(id);
  ASSERT_NE(base, nullptr);
  const index_t n = base->n();

  std::vector<std::vector<double>> rhs;
  std::vector<std::vector<double>> want;
  for (unsigned i = 0; i < 6; ++i) {
    rhs.push_back(make_panel<double>(n, 1, 100 + i));
    std::vector<double> w(static_cast<std::size_t>(n));
    ASSERT_TRUE(base->solve(rhs.back().data(), w.data(), {}).ok());
    want.push_back(std::move(w));
  }

  std::vector<Response> out(rhs.size());
  std::vector<std::thread> clients;
  for (std::size_t i = 0; i < rhs.size(); ++i)
    clients.emplace_back([&, i] {
      Request req;
      req.matrix_id = id;
      req.b = rhs[i];
      out[i] = svc.solve(req);
    });
  for (auto& t : clients) t.join();

  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_TRUE(out[i].status.ok()) << i << ": " << out[i].status.to_string();
    EXPECT_TRUE(BitwiseEqual(out[i].x, want[i])) << "request " << i;
  }
  const service::ServiceStats s = svc.stats();
  EXPECT_GT(s.shard.epochs, 0u);
  EXPECT_EQ(s.shard.worker_level_analyses, 0u);
  EXPECT_EQ(s.shard.fallbacks, 0u);
}

TEST(ShardService, UnshardedMatrixHasNoBackend) {
  service::SolveService svc;
  std::uint64_t id = 0;
  ASSERT_TRUE(svc.register_matrix(fixture(), base_options(), &id).ok());
  EXPECT_EQ(svc.shard_backend(id), nullptr);
  EXPECT_EQ(svc.shard_backend(id + 999), nullptr);
  EXPECT_EQ(svc.stats().shard.epochs, 0u);
}

// --- common/io frame layer (ISSUE 9 satellite) ------------------------------

constexpr io::FrameSpec kTestSpec = {0x54534554u /* "TEST" */, 1, 1 << 16};

TEST(FramedIo, RoundTripWithAndWithoutCrc) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5, 250};
  for (bool crc : {false, true}) {
    ASSERT_TRUE(io::write_frame(fds[0], kTestSpec, 7, payload.data(),
                                payload.size(), crc)
                    .ok());
    std::uint8_t type = 0;
    std::vector<std::uint8_t> got;
    ASSERT_TRUE(io::read_frame(fds[1], kTestSpec, &type, &got).ok());
    EXPECT_EQ(type, 7);
    EXPECT_EQ(got, payload);  // CRC trailer verified and stripped
  }
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(FramedIo, FlippedPayloadBitIsAChecksumMismatch) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  // Assemble a CRC frame by hand, then corrupt one payload byte.
  std::vector<std::uint8_t> payload = {10, 20, 30, 40};
  const std::uint32_t crc = io::crc32(payload.data(), payload.size());
  io::FrameHeader hdr;
  hdr.magic = kTestSpec.magic;
  hdr.version = kTestSpec.version;
  hdr.type = 1;
  hdr.flags = io::kFrameFlagCrc;
  hdr.payload_len = payload.size();
  std::uint8_t raw[io::kFrameHeaderBytes];
  io::encode_frame_header(hdr, raw);
  payload[2] ^= 0x4;  // the flip
  ASSERT_TRUE(io::write_exact(fds[0], raw, sizeof raw).ok());
  ASSERT_TRUE(io::write_exact(fds[0], payload.data(), payload.size()).ok());
  ASSERT_TRUE(io::write_exact(fds[0], &crc, sizeof crc).ok());
  std::uint8_t type = 0;
  std::vector<std::uint8_t> got;
  EXPECT_EQ(io::read_frame(fds[1], kTestSpec, &type, &got).code(),
            StatusCode::kChecksumMismatch);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(FramedIo, TruncationAndCleanEofAreDistinguished) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  // A header promising 100 payload bytes, 40 delivered, then the peer
  // vanishes mid-buffer: typed kTruncated.
  io::FrameHeader hdr;
  hdr.magic = kTestSpec.magic;
  hdr.version = kTestSpec.version;
  hdr.type = 2;
  hdr.payload_len = 100;
  std::uint8_t raw[io::kFrameHeaderBytes];
  io::encode_frame_header(hdr, raw);
  ASSERT_TRUE(io::write_exact(fds[0], raw, sizeof raw).ok());
  const std::vector<std::uint8_t> partial(40, 0xAB);
  ASSERT_TRUE(io::write_exact(fds[0], partial.data(), partial.size()).ok());
  ::close(fds[0]);
  std::uint8_t type = 0;
  std::vector<std::uint8_t> got;
  bool clean_eof = false;
  EXPECT_EQ(io::read_frame(fds[1], kTestSpec, &type, &got, &clean_eof).code(),
            StatusCode::kTruncated);
  EXPECT_FALSE(clean_eof);
  // A fresh pair, closed between frames: clean EOF, Ok.
  int fds2[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds2), 0);
  ::close(fds2[0]);
  clean_eof = false;
  EXPECT_TRUE(
      io::read_frame(fds2[1], kTestSpec, &type, &got, &clean_eof).ok());
  EXPECT_TRUE(clean_eof);
  ::close(fds2[1]);
  ::close(fds[1]);
}

TEST(FramedIo, WrongMagicAndOversizePayloadAreBadFormat) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  io::FrameHeader hdr;
  hdr.magic = 0xDEADBEEF;
  hdr.version = kTestSpec.version;
  hdr.payload_len = 0;
  std::uint8_t raw[io::kFrameHeaderBytes];
  io::encode_frame_header(hdr, raw);
  ASSERT_TRUE(io::write_exact(fds[0], raw, sizeof raw).ok());
  std::uint8_t type = 0;
  std::vector<std::uint8_t> got;
  EXPECT_EQ(io::read_frame(fds[1], kTestSpec, &type, &got).code(),
            StatusCode::kBadFormat);

  hdr.magic = kTestSpec.magic;
  hdr.payload_len = kTestSpec.max_payload + 1;  // validated pre-allocation
  io::encode_frame_header(hdr, raw);
  ASSERT_TRUE(io::write_exact(fds[0], raw, sizeof raw).ok());
  EXPECT_EQ(io::read_frame(fds[1], kTestSpec, &type, &got).code(),
            StatusCode::kBadFormat);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(FramedIo, ControlMessagesRoundTrip) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  shard::ReportMsg in;
  in.seq = 42;
  in.code = static_cast<std::int32_t>(StatusCode::kSpinTimeout);
  in.message = "halo wait exceeded";
  in.steps_run = 17;
  in.halo_deferred = 3;
  in.halo_ready = 2;
  in.wait_ms = 1.5;
  in.level_analyses = 0;
  ASSERT_TRUE(shard::write_report(fds[0], in).ok());
  std::uint8_t type = 0;
  std::vector<std::uint8_t> payload;
  ASSERT_TRUE(shard::read_any_frame(fds[1], &type, &payload).ok());
  ASSERT_EQ(type, static_cast<std::uint8_t>(shard::ControlFrame::kReport));
  shard::ReportMsg out;
  ASSERT_TRUE(shard::decode_report(payload, &out).ok());
  EXPECT_EQ(out.seq, in.seq);
  EXPECT_EQ(out.code, in.code);
  EXPECT_EQ(out.message, in.message);
  EXPECT_EQ(out.steps_run, in.steps_run);
  EXPECT_EQ(out.halo_deferred, in.halo_deferred);
  EXPECT_EQ(out.halo_ready, in.halo_ready);
  EXPECT_DOUBLE_EQ(out.wait_ms, in.wait_ms);
  // Truncated control payloads decode typed, never read past the buffer.
  payload.resize(4);
  EXPECT_EQ(shard::decode_report(payload, &out).code(),
            StatusCode::kTruncated);
  ::close(fds[0]);
  ::close(fds[1]);
}

}  // namespace
}  // namespace blocktri
