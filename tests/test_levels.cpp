// Level-set analysis tests, including the paper's Figure 1 example and the
// §3.3 reordering invariants.
#include <gtest/gtest.h>

#include "analysis/features.hpp"
#include "analysis/levels.hpp"
#include "gen/generators.hpp"
#include "helpers.hpp"
#include "sparse/permute.hpp"
#include "sparse/triangular.hpp"

namespace blocktri {
namespace {

using blocktri::testing::figure1_matrix;

TEST(Levels, Figure1Example) {
  const auto L = figure1_matrix();
  EXPECT_EQ(L.nnz(), 15);
  const auto ls = compute_level_sets(L);
  ASSERT_EQ(ls.nlevels, 4);
  // Level 0: {0, 1, 6}; level 1: {2, 3, 4}; level 2: {5}; level 3: {7}.
  EXPECT_EQ(ls.level_width(0), 3);
  EXPECT_EQ(ls.level_width(1), 3);
  EXPECT_EQ(ls.level_width(2), 1);
  EXPECT_EQ(ls.level_width(3), 1);
  EXPECT_EQ(ls.level_item, (std::vector<index_t>{0, 1, 6, 2, 3, 4, 5, 7}));
  EXPECT_EQ(ls.level_of, (std::vector<index_t>{0, 0, 1, 1, 1, 2, 0, 3}));
}

TEST(Levels, DiagonalHasOneLevel) {
  const auto ls = compute_level_sets(gen::diagonal(100, 1));
  EXPECT_EQ(ls.nlevels, 1);
  EXPECT_EQ(ls.level_width(0), 100);
}

TEST(Levels, ChainHasNLevels) {
  const auto ls = compute_level_sets(gen::tridiag_chain(64, 2));
  EXPECT_EQ(ls.nlevels, 64);
  for (index_t l = 0; l < 64; ++l) EXPECT_EQ(ls.level_width(l), 1);
}

TEST(Levels, Grid2dWavefronts) {
  const auto ls = compute_level_sets(gen::grid2d(7, 5, 3));
  EXPECT_EQ(ls.nlevels, 7 + 5 - 1);
}

TEST(Levels, EmptyMatrix) {
  Csr<double> a;
  a.nrows = a.ncols = 0;
  a.row_ptr = {0};
  const auto ls = compute_level_sets(a);
  EXPECT_EQ(ls.nlevels, 0);
  EXPECT_TRUE(ls.level_item.empty());
}

TEST(Levels, RejectsUpperEntries) {
  Coo<double> coo;
  coo.nrows = coo.ncols = 2;
  coo.row = {0, 0, 1};
  coo.col = {0, 1, 1};
  coo.val = {1, 1, 1};
  EXPECT_THROW(compute_level_sets(coo_to_csr(coo)), Error);
}

TEST(Levels, LevelOfRespectsDependencies) {
  const auto L = gen::power_law(500, 2.1, 64, 4.0, 7);
  const auto ls = compute_level_sets(L);
  for (index_t i = 0; i < L.nrows; ++i) {
    for (offset_t k = L.row_ptr[static_cast<std::size_t>(i)];
         k < L.row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
      const index_t j = L.col_idx[static_cast<std::size_t>(k)];
      if (j != i)
        EXPECT_LT(ls.level_of[static_cast<std::size_t>(j)],
                  ls.level_of[static_cast<std::size_t>(i)]);
    }
  }
  // Tightness: every row above level 0 has a parent exactly one level up.
  for (index_t i = 0; i < L.nrows; ++i) {
    const index_t lvl = ls.level_of[static_cast<std::size_t>(i)];
    if (lvl == 0) continue;
    bool tight = false;
    for (offset_t k = L.row_ptr[static_cast<std::size_t>(i)];
         k < L.row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
      const index_t j = L.col_idx[static_cast<std::size_t>(k)];
      if (j != i && ls.level_of[static_cast<std::size_t>(j)] == lvl - 1)
        tight = true;
    }
    EXPECT_TRUE(tight) << "row " << i << " is deeper than its parents force";
  }
}

TEST(Levels, WidthsPartitionRows) {
  const auto L = gen::kkt_structure(700, 9, 3.0, 5);
  const auto ls = compute_level_sets(L);
  offset_t total = 0;
  for (index_t l = 0; l < ls.nlevels; ++l) total += ls.level_width(l);
  EXPECT_EQ(total, 700);
  EXPECT_EQ(ls.level_ptr.back(), 700);
}

TEST(Levels, ItemsAreStableWithinLevel) {
  const auto L = gen::random_levels(300, 12, 2.0, 1.0, 9);
  const auto ls = compute_level_sets(L);
  for (index_t l = 0; l < ls.nlevels; ++l)
    for (offset_t p = ls.level_ptr[static_cast<std::size_t>(l)] + 1;
         p < ls.level_ptr[static_cast<std::size_t>(l) + 1]; ++p)
      EXPECT_LT(ls.level_item[static_cast<std::size_t>(p - 1)],
                ls.level_item[static_cast<std::size_t>(p)]);
}

TEST(Levels, ParallelismStats) {
  const auto ls = compute_level_sets(figure1_matrix());
  const auto st = parallelism_stats(ls);
  EXPECT_EQ(st.min_width, 1);
  EXPECT_EQ(st.max_width, 3);
  EXPECT_DOUBLE_EQ(st.avg_width, 2.0);
}

TEST(Levels, PermutationKeepsLowerTriangular) {
  const auto L = gen::trace_network(800, 7, 1.8, 0.45, 11);
  const auto ls = compute_level_sets(L);
  const auto perm = level_order_permutation(ls);
  const auto P = permute_symmetric(L, perm);
  EXPECT_TRUE(is_lower_triangular_nonsingular(P));
  // After reordering, levels are contiguous row ranges and each level's
  // diagonal block is diagonal-only: rows in the same level have no
  // dependencies on one another.
  const auto ls2 = compute_level_sets(P);
  EXPECT_EQ(ls2.nlevels, ls.nlevels);
  for (index_t i = 0; i < P.nrows; ++i) {
    for (offset_t k = P.row_ptr[static_cast<std::size_t>(i)];
         k < P.row_ptr[static_cast<std::size_t>(i) + 1] - 1; ++k) {
      const index_t j = P.col_idx[static_cast<std::size_t>(k)];
      EXPECT_LT(ls2.level_of[static_cast<std::size_t>(j)],
                ls2.level_of[static_cast<std::size_t>(i)]);
    }
  }
  // level_of must be non-decreasing over the permuted rows.
  for (index_t i = 1; i < P.nrows; ++i)
    EXPECT_LE(ls2.level_of[static_cast<std::size_t>(i - 1)],
              ls2.level_of[static_cast<std::size_t>(i)]);
}

// --- Böhnlein-style level merging (merge_width > 0) -------------------------

TEST(LevelMerge, DisabledIsBitIdenticalToDefault) {
  // The regression contract: merge_width == 0 (the default) must reproduce
  // the historical grouping exactly, field by field, on every family —
  // plans built without merging are therefore unchanged by the feature.
  for (const auto& tm : blocktri::testing::test_matrices()) {
    SCOPED_TRACE(tm.name);
    const auto L = tm.build();
    const auto base = compute_level_sets(L);
    const auto zero = compute_level_sets(L, nullptr, 0);
    EXPECT_EQ(zero.nlevels, base.nlevels);
    EXPECT_EQ(zero.level_of, base.level_of);
    EXPECT_EQ(zero.level_ptr, base.level_ptr);
    EXPECT_EQ(zero.level_item, base.level_item);
  }
}

TEST(LevelMerge, FusesChainIntoWidthBoundedRuns) {
  // 64 raw levels of width 1 fuse greedily into runs of merge_width rows.
  const auto L = gen::tridiag_chain(64, 2);
  const auto ls = compute_level_sets(L, nullptr, 16);
  ASSERT_EQ(ls.nlevels, 4);
  for (index_t l = 0; l < ls.nlevels; ++l) EXPECT_EQ(ls.level_width(l), 16);
  // Items remain the ascending (topological) order.
  for (std::size_t p = 1; p < ls.level_item.size(); ++p)
    EXPECT_LT(ls.level_item[p - 1], ls.level_item[p]);
}

TEST(LevelMerge, GreedyRunRespectsWidthDuringGrouping) {
  // Figure 1 widths are 3,3,1,1; at merge_width 4 the greedy pass keeps
  // level 0 (3+3 > 4 stops the first run), fuses levels 1+2 (3+1 == 4) and
  // leaves level 3 alone: widths 3,4,1.
  const auto ls = compute_level_sets(figure1_matrix(), nullptr, 4);
  ASSERT_EQ(ls.nlevels, 3);
  EXPECT_EQ(ls.level_width(0), 3);
  EXPECT_EQ(ls.level_width(1), 4);
  EXPECT_EQ(ls.level_width(2), 1);
  EXPECT_EQ(ls.level_item, (std::vector<index_t>{0, 1, 6, 2, 3, 4, 5, 7}));
  EXPECT_EQ(ls.level_of, (std::vector<index_t>{0, 0, 1, 1, 1, 1, 0, 2}));
}

TEST(LevelMerge, MergedPartitionStaysTopological) {
  // Merged levels may hold internal dependencies, but only forward ones in
  // item order: for ordering/partitioning consumers, every strict parent
  // must appear before its child in the merged level_item sequence.
  const auto L = gen::power_law(800, 2.1, 64, 4.0, 19);
  const auto ls = compute_level_sets(L, nullptr, 32);
  std::vector<index_t> pos(static_cast<std::size_t>(L.nrows));
  for (std::size_t p = 0; p < ls.level_item.size(); ++p)
    pos[static_cast<std::size_t>(ls.level_item[p])] =
        static_cast<index_t>(p);
  for (index_t i = 0; i < L.nrows; ++i) {
    for (offset_t k = L.row_ptr[static_cast<std::size_t>(i)];
         k < L.row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
      const index_t j = L.col_idx[static_cast<std::size_t>(k)];
      if (j != i) {
        EXPECT_LT(pos[static_cast<std::size_t>(j)],
                  pos[static_cast<std::size_t>(i)]);
        EXPECT_LE(ls.level_of[static_cast<std::size_t>(j)],
                  ls.level_of[static_cast<std::size_t>(i)]);
      }
    }
  }
  // Rows still partitioned: widths sum to n and levels only got wider.
  EXPECT_EQ(ls.level_ptr.back(), static_cast<offset_t>(L.nrows));
  EXPECT_LE(ls.nlevels, compute_level_sets(L).nlevels);
}

TEST(LevelMerge, SerialAndPooledGroupingAgree) {
  ThreadPool pool(4);
  // Large enough (n >= 2 * kHostParallelMinNnz, nlevels << n) that the
  // pooled histogram grouping actually runs.
  const auto L = gen::random_levels(8000, 120, 2.0, 1.0, 21);
  const auto serial = compute_level_sets(L, nullptr, 16);
  const auto pooled = compute_level_sets(L, &pool, 16);
  EXPECT_EQ(pooled.nlevels, serial.nlevels);
  EXPECT_EQ(pooled.level_of, serial.level_of);
  EXPECT_EQ(pooled.level_ptr, serial.level_ptr);
  EXPECT_EQ(pooled.level_item, serial.level_item);
}

TEST(Features, BasicQuantities) {
  const auto L = gen::banded(100, 8, 3.0, 13);
  const auto f = compute_features(L);
  EXPECT_EQ(f.nrows, 100);
  EXPECT_EQ(f.nnz, L.nnz());
  EXPECT_NEAR(f.nnz_per_row, static_cast<double>(L.nnz()) / 100.0, 1e-12);
  EXPECT_DOUBLE_EQ(f.empty_ratio, 0.0);
  EXPECT_GE(f.max_row_nnz, f.min_row_nnz);
  EXPECT_FALSE(f.diagonal_only);
}

TEST(Features, DiagonalOnlyDetection) {
  EXPECT_TRUE(compute_features(gen::diagonal(10, 1)).diagonal_only);
  EXPECT_FALSE(compute_features(gen::tridiag_chain(10, 1)).diagonal_only);
}

TEST(Features, EmptyRowsInRectangularBlock) {
  Coo<double> coo;
  coo.nrows = 10;
  coo.ncols = 5;
  coo.row = {2, 7};
  coo.col = {1, 3};
  coo.val = {1, 1};
  const auto f = compute_features(coo_to_csr(coo));
  EXPECT_DOUBLE_EQ(f.empty_ratio, 0.8);
  EXPECT_EQ(f.max_row_nnz, 1);
  EXPECT_EQ(f.min_row_nnz, 0);
}

TEST(Features, TriangularFeaturesIncludeLevels) {
  const auto tf = compute_triangular_features(gen::tridiag_chain(50, 3));
  EXPECT_EQ(tf.nlevels, 50);
  EXPECT_EQ(tf.parallelism.max_width, 1);
  EXPECT_FALSE(describe(tf.base).empty());
}

TEST(Features, Bandwidth) {
  const auto f = compute_features(gen::tridiag_chain(10, 1));
  EXPECT_EQ(f.bandwidth, 1);
  EXPECT_EQ(compute_features(gen::diagonal(10, 1)).bandwidth, 0);
}

}  // namespace
}  // namespace blocktri
