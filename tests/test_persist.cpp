// Plan persistence & cache tests (ISSUE 4).
//
// Contract under test: a solver rehydrated from a saved artifact or a warm
// PlanCache hit is indistinguishable from the cold-built one — same plan,
// bitwise-identical solves at every thread count — and performs ZERO
// level-set analysis (asserted via level_analysis_count). Artifact defects
// (truncation, bit rot, wrong version/precision/structure/options) must map
// to typed Status codes, never a crash.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/solver.hpp"
#include "gen/generators.hpp"
#include "helpers.hpp"
#include "persist/artifact.hpp"
#include "persist/plan_cache.hpp"

namespace blocktri {
namespace {

using blocktri::testing::test_matrices;

template <class T>
typename BlockSolver<T>::Options small_block_options(
    BlockScheme scheme = BlockScheme::kRecursive) {
  typename BlockSolver<T>::Options opt;
  opt.scheme = scheme;
  opt.planner.stop_rows = 64;  // force real block structure on test sizes
  opt.planner.nseg = 4;
  return opt;
}

std::string artifact_path(const std::string& name) {
  return ::testing::TempDir() + "blocktri_" + name + ".btpa";
}

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << path;
  return std::string(std::istreambuf_iterator<char>(is),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(os.good()) << path;
}

template <class T>
Csr<T> fixture(int which = 0) {
  Csr<double> d;
  switch (which) {
    case 0: d = gen::grid2d(40, 25, 5); break;
    case 1: d = gen::banded(800, 16, 3.0, 4); break;
    default: d = gen::random_levels(1500, 24, 3.0, 1.0, 8); break;
  }
  return gen::convert_values<T>(d);
}

// --- Bitwise round-trip: cold vs save -> load, all schemes/threads ---------
//
// At threads = 1 every path is exact, so cold and warm must agree bitwise.
// At threads > 1 the executor's own guarantees apply: solve_many is bitwise
// deterministic at any thread count (asserted bitwise), while solve() on
// sync-free blocks accumulates in completion order and is only
// rounding-equal run to run — there the warm solver is held to the same
// tight normwise bound the repo holds the threaded executor itself to.

template <class T>
void expect_equal_solvers(const BlockSolver<T>& cold,
                          const BlockSolver<T>& warm, const Csr<T>& L) {
  ASSERT_TRUE(equals(cold.plan(), warm.plan()));
  ASSERT_EQ(cold.tri_info().size(), warm.tri_info().size());
  for (std::size_t i = 0; i < cold.tri_info().size(); ++i) {
    EXPECT_EQ(cold.tri_info()[i].kind, warm.tri_info()[i].kind);
    EXPECT_EQ(cold.tri_info()[i].nnz, warm.tri_info()[i].nnz);
  }
  ASSERT_EQ(cold.step_waves().size(), warm.step_waves().size());
  const bool exact = cold.threads() == 1 && warm.threads() == 1;

  const auto b = gen::random_rhs<T>(L.nrows, 7);
  if (exact) {
    EXPECT_EQ(cold.solve(b), warm.solve(b));  // bitwise
  } else {
    EXPECT_TRUE(blocktri::testing::VectorsNear(
        warm.solve(b), cold.solve(b),
        blocktri::testing::default_tol<T>()));
  }

  const index_t k = 3;
  std::vector<T> B;
  for (index_t c = 0; c < k; ++c) {
    const auto col = gen::random_rhs<T>(L.nrows, 100 + static_cast<int>(c));
    B.insert(B.end(), col.begin(), col.end());
  }
  EXPECT_EQ(cold.solve_many(B, k), warm.solve_many(B, k));  // always bitwise

  SolveResult<T> rc = cold.solve_checked(b);
  SolveResult<T> rw = warm.solve_checked(b);
  ASSERT_TRUE(rc.ok());
  ASSERT_TRUE(rw.ok());
  if (exact) {
    EXPECT_EQ(rc.x, rw.x);  // bitwise, including residual/refinement path
    EXPECT_EQ(rc.report.residual, rw.report.residual);
  } else {
    EXPECT_TRUE(blocktri::testing::VectorsNear(
        rw.x, rc.x, blocktri::testing::default_tol<T>()));
  }
}

template <class T>
void round_trip_scheme_threads(BlockScheme scheme, int threads,
                               const std::string& tag) {
  const Csr<T> L = fixture<T>(0);
  auto opt = small_block_options<T>(scheme);
  opt.threads = threads;

  std::unique_ptr<BlockSolver<T>> cold;
  ASSERT_TRUE(BlockSolver<T>::create(L, opt, &cold).ok());

  const std::string path = artifact_path(tag);
  ASSERT_TRUE(cold->save_artifact(path).ok());

  std::unique_ptr<BlockSolver<T>> warm;
  Status st = BlockSolver<T>::create_from_file(path, L, opt, &warm);
  ASSERT_TRUE(st.ok()) << st.to_string();
  expect_equal_solvers(*cold, *warm, L);
  std::remove(path.c_str());
}

TEST(PersistRoundTrip, AllSchemesThreadsDouble) {
  for (BlockScheme scheme :
       {BlockScheme::kRecursive, BlockScheme::kColumn, BlockScheme::kRow,
        BlockScheme::kHbmc})
    for (int threads : {1, 2, 4})
      round_trip_scheme_threads<double>(
          scheme, threads,
          "rt_d_" + to_string(scheme) + "_" + std::to_string(threads));
}

TEST(PersistRoundTrip, AllSchemesThreadsFloat) {
  for (BlockScheme scheme :
       {BlockScheme::kRecursive, BlockScheme::kColumn, BlockScheme::kRow,
        BlockScheme::kHbmc})
    for (int threads : {1, 2, 4})
      round_trip_scheme_threads<float>(
          scheme, threads,
          "rt_f_" + to_string(scheme) + "_" + std::to_string(threads));
}

// --- Format version stamps (ISSUE 10) ---------------------------------------
//
// Each file claims the OLDEST version that can describe it, so plain
// artifacts stay byte-identical to (and loadable by) pre-color builds. The
// color section is what forces a file to version 4; a recursive untuned
// artifact must still stamp version 1 exactly as it did before the HBMC
// scheme existed.

TEST(PersistVersion, UntunedNonHbmcStillStampsVersionOne) {
  const Csr<double> L = fixture<double>(0);
  auto opt = small_block_options<double>();
  std::unique_ptr<BlockSolver<double>> s;
  ASSERT_TRUE(BlockSolver<double>::create(L, opt, &s).ok());
  const std::string path = artifact_path("stamp_v1");
  ASSERT_TRUE(s->save_artifact(path).ok());
  const std::string bytes = read_file(path);
  ASSERT_GT(bytes.size(), 8u);
  EXPECT_EQ(bytes[4], 1);  // little-endian u32 version after the magic
  EXPECT_EQ(bytes[5], 0);
  PlanArtifact<double> art;
  EXPECT_TRUE(load_artifact(path, &art).ok());
  EXPECT_TRUE(art.plan.color_bounds.empty());
  std::remove(path.c_str());
}

TEST(PersistVersion, HbmcStampsVersionFourAndCarriesColors) {
  const Csr<double> L = fixture<double>(0);
  auto opt = small_block_options<double>(BlockScheme::kHbmc);
  std::unique_ptr<BlockSolver<double>> s;
  ASSERT_TRUE(BlockSolver<double>::create(L, opt, &s).ok());
  const std::string path = artifact_path("stamp_v4");
  ASSERT_TRUE(s->save_artifact(path).ok());
  const std::string bytes = read_file(path);
  ASSERT_GT(bytes.size(), 8u);
  EXPECT_EQ(bytes[4], static_cast<char>(kArtifactFormatVersion));
  PlanArtifact<double> art;
  ASSERT_TRUE(load_artifact(path, &art).ok());
  EXPECT_EQ(art.plan.scheme, BlockScheme::kHbmc);
  EXPECT_EQ(art.plan.color_bounds, s->plan().color_bounds);
  EXPECT_EQ(art.plan.hbmc_block_rows, s->plan().hbmc_block_rows);
  std::remove(path.c_str());
}

TEST(PersistVersion, ColorSectionBitRotIsChecksumMismatch) {
  // The color section is written last, so the file's final payload bytes
  // belong to it; flipping one must surface as the section CRC, typed.
  const Csr<double> L = fixture<double>(0);
  auto opt = small_block_options<double>(BlockScheme::kHbmc);
  std::unique_ptr<BlockSolver<double>> s;
  ASSERT_TRUE(BlockSolver<double>::create(L, opt, &s).ok());
  const std::string path = artifact_path("color_bitrot");
  ASSERT_TRUE(s->save_artifact(path).ok());
  std::string bytes = read_file(path);
  ASSERT_GT(bytes.size(), 16u);
  bytes[bytes.size() - 1] = static_cast<char>(bytes[bytes.size() - 1] ^ 0x20);
  write_file(path, bytes);
  PlanArtifact<double> art;
  const Status st = load_artifact(path, &art);
  EXPECT_EQ(st.code(), StatusCode::kChecksumMismatch);
  EXPECT_GE(st.location(), 0);
  std::remove(path.c_str());
}

// A plan captured at threads = 1 must replay when rehydrated at threads = 4
// — the fingerprint deliberately excludes the thread count, and the captured
// waves must equal the ones a threads = 4 cold build computes. solve_many is
// bitwise deterministic at any thread count, so it anchors the bitwise
// claim; plain solve() on sync-free blocks is rounding-equal under a pool
// (completion-order accumulation), matching the executor's own contract.
TEST(PersistRoundTrip, ThreadCountCrossover) {
  const Csr<double> L = fixture<double>(1);
  auto opt1 = small_block_options<double>();
  opt1.threads = 1;
  std::unique_ptr<BlockSolver<double>> cold1;
  ASSERT_TRUE(BlockSolver<double>::create(L, opt1, &cold1).ok());
  const std::string path = artifact_path("crossover");
  ASSERT_TRUE(cold1->save_artifact(path).ok());

  auto opt4 = opt1;
  opt4.threads = 4;
  std::unique_ptr<BlockSolver<double>> cold4, warm4;
  ASSERT_TRUE(BlockSolver<double>::create(L, opt4, &cold4).ok());
  ASSERT_TRUE(
      BlockSolver<double>::create_from_file(path, L, opt4, &warm4).ok());
  EXPECT_EQ(warm4->threads(), 4);
  ASSERT_EQ(warm4->step_waves().size(), cold4->step_waves().size());
  expect_equal_solvers(*cold4, *warm4, L);
  // And the batched path must agree bitwise with the serial capture source.
  const auto b = gen::random_rhs<double>(L.nrows, 3);
  EXPECT_EQ(cold1->solve_many(b, 1), warm4->solve_many(b, 1));
  std::remove(path.c_str());
}

// Every forced triangular kernel kind survives the round trip.
TEST(PersistRoundTrip, ForcedKernels) {
  const Csr<double> L = fixture<double>(2);
  for (TriKernelKind kind :
       {TriKernelKind::kCompletelyParallel, TriKernelKind::kLevelSet,
        TriKernelKind::kSyncFree, TriKernelKind::kCusparseLike}) {
    auto opt = small_block_options<double>();
    opt.adaptive = false;
    opt.forced_tri = kind;
    std::unique_ptr<BlockSolver<double>> cold;
    ASSERT_TRUE(BlockSolver<double>::create(L, opt, &cold).ok());
    const std::string path = artifact_path("forced_" + to_string(kind));
    ASSERT_TRUE(cold->save_artifact(path).ok());
    std::unique_ptr<BlockSolver<double>> warm;
    ASSERT_TRUE(
        BlockSolver<double>::create_from_file(path, L, opt, &warm).ok());
    expect_equal_solvers(*cold, *warm, L);
    std::remove(path.c_str());
  }
}

// DCSR squares, if any are selected, must survive too (forced).
TEST(PersistRoundTrip, ForcedDcsrSquares) {
  const Csr<double> L = fixture<double>(0);
  auto opt = small_block_options<double>();
  opt.adaptive = false;
  opt.forced_square = SpmvKernelKind::kVectorDcsr;
  std::unique_ptr<BlockSolver<double>> cold;
  ASSERT_TRUE(BlockSolver<double>::create(L, opt, &cold).ok());
  const std::string path = artifact_path("dcsr");
  ASSERT_TRUE(cold->save_artifact(path).ok());
  std::unique_ptr<BlockSolver<double>> warm;
  ASSERT_TRUE(BlockSolver<double>::create_from_file(path, L, opt, &warm).ok());
  expect_equal_solvers(*cold, *warm, L);
  std::remove(path.c_str());
}

// The full registry of structural families at the default options.
TEST(PersistRoundTrip, MatrixRegistrySweep) {
  for (const auto& tm : test_matrices()) {
    const Csr<double> L = tm.build();
    auto opt = small_block_options<double>();
    std::unique_ptr<BlockSolver<double>> cold;
    ASSERT_TRUE(BlockSolver<double>::create(L, opt, &cold).ok()) << tm.name;
    const std::string path = artifact_path("sweep_" + tm.name);
    ASSERT_TRUE(cold->save_artifact(path).ok()) << tm.name;
    std::unique_ptr<BlockSolver<double>> warm;
    ASSERT_TRUE(BlockSolver<double>::create_from_file(path, L, opt, &warm)
                    .ok())
        << tm.name;
    const auto b = gen::random_rhs<double>(L.nrows, 11);
    EXPECT_EQ(cold->solve(b), warm->solve(b)) << tm.name;
    std::remove(path.c_str());
  }
}

TEST(PersistRoundTrip, VerifyDisabled) {
  const Csr<double> L = fixture<double>(0);
  auto opt = small_block_options<double>();
  opt.verify.enabled = false;
  std::unique_ptr<BlockSolver<double>> cold;
  ASSERT_TRUE(BlockSolver<double>::create(L, opt, &cold).ok());
  const std::string path = artifact_path("noverify");
  ASSERT_TRUE(cold->save_artifact(path).ok());

  std::unique_ptr<BlockSolver<double>> warm;
  ASSERT_TRUE(BlockSolver<double>::create_from_file(path, L, opt, &warm).ok());
  const auto b = gen::random_rhs<double>(L.nrows, 5);
  EXPECT_EQ(cold->solve(b), warm->solve(b));

  // Asking for verify from a verify-less artifact is an options mismatch.
  auto want_verify = opt;
  want_verify.verify.enabled = true;
  PlanArtifact<double> art;
  ASSERT_TRUE(load_artifact(path, &art).ok());
  std::unique_ptr<BlockSolver<double>> bad;
  Status st = BlockSolver<double>::create_from_artifact(
      std::make_shared<PlanArtifact<double>>(std::move(art)), want_verify,
      &bad);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

// --- refresh_values --------------------------------------------------------

TEST(PersistRefresh, NewValuesMatchColdBuild) {
  const Csr<double> L1 = fixture<double>(1);
  Csr<double> L2 = L1;
  for (std::size_t i = 0; i < L2.val.size(); ++i)
    L2.val[i] *= 1.0 + 0.001 * static_cast<double>(i % 97);

  auto opt = small_block_options<double>();
  std::unique_ptr<BlockSolver<double>> solver;
  ASSERT_TRUE(BlockSolver<double>::create(L1, opt, &solver).ok());
  ASSERT_TRUE(solver->refresh_values(L2).ok());

  std::unique_ptr<BlockSolver<double>> cold2;
  ASSERT_TRUE(BlockSolver<double>::create(L2, opt, &cold2).ok());
  expect_equal_solvers(*cold2, *solver, L2);
}

TEST(PersistRefresh, RejectsDifferentStructure) {
  const Csr<double> L = fixture<double>(0);
  auto opt = small_block_options<double>();
  std::unique_ptr<BlockSolver<double>> solver;
  ASSERT_TRUE(BlockSolver<double>::create(L, opt, &solver).ok());

  EXPECT_EQ(solver->refresh_values(fixture<double>(1)).code(),
            StatusCode::kStructureMismatch);

  // Same shape and nnz count but one moved entry: hash must catch it.
  Csr<double> moved = L;
  for (std::size_t i = 0; i < moved.col_idx.size(); ++i) {
    const index_t row = [&] {
      index_t r = 0;
      while (moved.row_ptr[static_cast<std::size_t>(r) + 1] <=
             static_cast<offset_t>(i))
        ++r;
      return r;
    }();
    if (moved.col_idx[i] > 0 &&
        (i == 0 || moved.col_idx[i - 1] < moved.col_idx[i] - 1) &&
        moved.col_idx[i] < row) {
      --moved.col_idx[i];
      EXPECT_EQ(solver->refresh_values(moved).code(),
                StatusCode::kStructureMismatch);
      return;
    }
  }
  GTEST_SKIP() << "no movable off-diagonal entry found";
}

TEST(PersistRefresh, RefreshAfterFileLoadUsesNewValues) {
  const Csr<double> L1 = fixture<double>(0);
  Csr<double> L2 = L1;
  for (double& v : L2.val) v *= 2.0;

  auto opt = small_block_options<double>();
  std::unique_ptr<BlockSolver<double>> cold;
  ASSERT_TRUE(BlockSolver<double>::create(L1, opt, &cold).ok());
  const std::string path = artifact_path("refresh_file");
  ASSERT_TRUE(cold->save_artifact(path).ok());

  // create_from_file installs L2's values even though the artifact holds
  // L1's — the artifact contributes the *analysis*, the caller the numbers.
  std::unique_ptr<BlockSolver<double>> warm;
  ASSERT_TRUE(
      BlockSolver<double>::create_from_file(path, L2, opt, &warm).ok());
  std::unique_ptr<BlockSolver<double>> cold2;
  ASSERT_TRUE(BlockSolver<double>::create(L2, opt, &cold2).ok());
  const auto b = gen::random_rhs<double>(L1.nrows, 9);
  EXPECT_EQ(cold2->solve(b), warm->solve(b));
  std::remove(path.c_str());
}

// --- Zero analysis on the warm paths ---------------------------------------

TEST(PersistWarmPath, LoadedSolverDoesZeroLevelAnalysis) {
  const Csr<double> L = fixture<double>(2);
  auto opt = small_block_options<double>();
  std::unique_ptr<BlockSolver<double>> cold;
  ASSERT_TRUE(BlockSolver<double>::create(L, opt, &cold).ok());
  const std::string path = artifact_path("zero_analysis");
  ASSERT_TRUE(cold->save_artifact(path).ok());

  const std::uint64_t before = level_analysis_count();
  std::unique_ptr<BlockSolver<double>> warm;
  ASSERT_TRUE(BlockSolver<double>::create_from_file(path, L, opt, &warm).ok());
  const auto b = gen::random_rhs<double>(L.nrows, 1);
  (void)warm->solve(b);
  EXPECT_EQ(level_analysis_count(), before);
  std::remove(path.c_str());
}

TEST(PersistWarmPath, CacheHitDoesZeroLevelAnalysis) {
  const Csr<double> L = fixture<double>(0);
  auto opt = small_block_options<double>();
  PlanCache<double> cache;

  std::unique_ptr<BlockSolver<double>> first;
  ASSERT_TRUE(BlockSolver<double>::create(L, opt, &first, &cache).ok());
  ASSERT_EQ(cache.stats().misses, 1u);

  const std::uint64_t before = level_analysis_count();
  std::unique_ptr<BlockSolver<double>> second;
  ASSERT_TRUE(BlockSolver<double>::create(L, opt, &second, &cache).ok());
  EXPECT_EQ(level_analysis_count(), before);  // the contract of the issue
  EXPECT_EQ(cache.stats().hits, 1u);

  const auto b = gen::random_rhs<double>(L.nrows, 2);
  EXPECT_EQ(first->solve(b), second->solve(b));
}

// --- PlanCache semantics ----------------------------------------------------

TEST(PlanCacheTest, HitMissEvictionCounters) {
  typename PlanCache<double>::Limits lim;
  lim.max_entries = 2;
  PlanCache<double> cache(lim);
  auto opt = small_block_options<double>();

  std::unique_ptr<BlockSolver<double>> s;
  for (int which : {0, 1, 0, 2, 1}) {  // 0,1 miss; 0 hit; 2 evicts 1; 1 miss
    ASSERT_TRUE(
        BlockSolver<double>::create(fixture<double>(which), opt, &s, &cache)
            .ok());
  }
  const PlanCacheStats st = cache.stats();
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 4u);
  EXPECT_EQ(st.inserts, 4u);
  EXPECT_EQ(st.evictions, 2u);
  EXPECT_EQ(st.entries, 2u);
  EXPECT_GT(st.bytes, 0u);
  EXPECT_LE(st.entries, lim.max_entries);
}

TEST(PlanCacheTest, LruOrder) {
  typename PlanCache<double>::Limits lim;
  lim.max_entries = 2;
  PlanCache<double> cache(lim);
  auto opt = small_block_options<double>();
  std::unique_ptr<BlockSolver<double>> s;

  ASSERT_TRUE(
      BlockSolver<double>::create(fixture<double>(0), opt, &s, &cache).ok());
  ASSERT_TRUE(
      BlockSolver<double>::create(fixture<double>(1), opt, &s, &cache).ok());
  // Touch 0 so 1 becomes LRU, then insert 2: 1 must be the victim.
  ASSERT_TRUE(
      BlockSolver<double>::create(fixture<double>(0), opt, &s, &cache).ok());
  ASSERT_TRUE(
      BlockSolver<double>::create(fixture<double>(2), opt, &s, &cache).ok());

  const std::uint64_t hits_before = cache.stats().hits;
  ASSERT_TRUE(
      BlockSolver<double>::create(fixture<double>(0), opt, &s, &cache).ok());
  EXPECT_EQ(cache.stats().hits, hits_before + 1);  // 0 survived
  ASSERT_TRUE(
      BlockSolver<double>::create(fixture<double>(1), opt, &s, &cache).ok());
  EXPECT_EQ(cache.stats().misses, 4u);  // 1 was evicted -> miss
}

TEST(PlanCacheTest, ByteCapBypassesOversizedArtifact) {
  typename PlanCache<double>::Limits lim;
  lim.max_bytes = 64;  // far below any real artifact
  PlanCache<double> cache(lim);
  auto opt = small_block_options<double>();
  std::unique_ptr<BlockSolver<double>> s;
  ASSERT_TRUE(
      BlockSolver<double>::create(fixture<double>(0), opt, &s, &cache).ok());
  const PlanCacheStats st = cache.stats();
  EXPECT_EQ(st.entries, 0u);  // handed back uncached, cache never wedges
  EXPECT_EQ(st.bytes, 0u);
  EXPECT_EQ(st.inserts, 0u);
}

TEST(PlanCacheTest, OptionsChangeIsADifferentKey) {
  PlanCache<double> cache;
  const Csr<double> L = fixture<double>(0);
  auto opt = small_block_options<double>();
  std::unique_ptr<BlockSolver<double>> s;
  ASSERT_TRUE(BlockSolver<double>::create(L, opt, &s, &cache).ok());
  auto opt2 = opt;
  opt2.planner.stop_rows = 128;
  ASSERT_TRUE(BlockSolver<double>::create(L, opt2, &s, &cache).ok());
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().entries, 2u);
  // threads, by contrast, shares the entry.
  auto opt3 = opt;
  opt3.threads = 4;
  ASSERT_TRUE(BlockSolver<double>::create(L, opt3, &s, &cache).ok());
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(PlanCacheTest, SharedArtifactFirstWriterWins) {
  PlanCache<double> cache;
  const Csr<double> L = fixture<double>(0);
  auto opt = small_block_options<double>();
  std::unique_ptr<BlockSolver<double>> s;
  ASSERT_TRUE(BlockSolver<double>::create(L, opt, &s, &cache).ok());

  const PlanCacheKey key{s->structure_hash(),
                         BlockSolver<double>::options_fingerprint(opt)};
  auto a1 = cache.find(key);
  ASSERT_NE(a1, nullptr);
  auto a2 = cache.find(key);
  EXPECT_EQ(a1.get(), a2.get());  // same immutable object, shared

  // Inserting a duplicate keeps the original.
  auto dup = std::make_shared<PlanArtifact<double>>(s->capture_artifact());
  auto kept = cache.insert(dup);
  EXPECT_EQ(kept.get(), a1.get());
  EXPECT_NE(kept.get(), dup.get());

  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.find(key), nullptr);      // gone
  EXPECT_TRUE(equals(a1->plan, s->plan())); // outstanding refs stay valid
}

TEST(PlanCacheTest, OverwriteInsertReplacesEntry) {
  PlanCache<double> cache;
  const Csr<double> L = fixture<double>(0);
  auto opt = small_block_options<double>();
  std::unique_ptr<BlockSolver<double>> s;
  ASSERT_TRUE(BlockSolver<double>::create(L, opt, &s, &cache).ok());
  const PlanCacheKey key{s->structure_hash(),
                         BlockSolver<double>::options_fingerprint(opt)};
  auto original = cache.find(key);
  ASSERT_NE(original, nullptr);

  auto replacement =
      std::make_shared<PlanArtifact<double>>(s->capture_artifact());
  auto kept = cache.insert(replacement);  // default: first writer wins
  EXPECT_EQ(kept.get(), original.get());

  kept = cache.insert(replacement, /*overwrite=*/true);
  EXPECT_EQ(kept.get(), replacement.get());
  EXPECT_EQ(cache.find(key).get(), replacement.get());
  EXPECT_EQ(cache.stats().entries, 1u);  // replaced in place, not duplicated
  EXPECT_TRUE(equals(original->plan, s->plan()));  // old refs stay valid
}

// The REVIEW-identified failure mode: a cached artifact under the right key
// whose contents fail the warm path (the hash-collision / corruption case)
// must be REPLACED by the cold rebuild, not kept — otherwise every future
// create() for that key pays the failed warm attempt plus a cold build
// forever.
TEST(PlanCacheTest, CreateReplacesEntryThatFailsWarmPath) {
  PlanCache<double> cache;
  const Csr<double> L = fixture<double>(0);
  auto opt = small_block_options<double>();
  std::unique_ptr<BlockSolver<double>> s;
  ASSERT_TRUE(BlockSolver<double>::create(L, opt, &s).ok());

  // Poison the cache: right key, contents that fail validation on the hit.
  auto bad = std::make_shared<PlanArtifact<double>>(s->capture_artifact());
  ASSERT_GE(bad->plan.n, 2);
  bad->plan.new_of_old[0] = bad->plan.new_of_old[1];
  cache.insert(bad);
  const PlanCacheKey key{s->structure_hash(),
                         BlockSolver<double>::options_fingerprint(opt)};
  ASSERT_EQ(cache.find(key).get(), bad.get());

  // The hit fails, create falls back to the cold build and still succeeds —
  // and the broken entry is replaced by the freshly captured artifact.
  std::unique_ptr<BlockSolver<double>> s2;
  ASSERT_TRUE(BlockSolver<double>::create(L, opt, &s2, &cache).ok());
  auto now = cache.find(key);
  ASSERT_NE(now, nullptr);
  EXPECT_NE(now.get(), bad.get());
  ASSERT_TRUE(validate_artifact(*now).ok());

  // A third create is a clean warm hit producing the reference solution.
  std::unique_ptr<BlockSolver<double>> s3;
  ASSERT_TRUE(BlockSolver<double>::create(L, opt, &s3, &cache).ok());
  const auto b = gen::random_rhs<double>(L.nrows, 13);
  EXPECT_EQ(s->solve(b), s3->solve(b));
}

// Concurrent creates against one cache: must be data-race free (TSan lane)
// and every solver must produce the reference solution.
TEST(PlanCacheTest, ConcurrentCreateAndSolve) {
  PlanCache<double> cache;
  auto opt = small_block_options<double>();
  const int kThreads = 4, kIters = 6;

  std::vector<Csr<double>> mats = {fixture<double>(0), fixture<double>(1),
                                   fixture<double>(2)};
  std::vector<std::vector<double>> refs;
  std::vector<std::vector<double>> rhs;
  for (std::size_t m = 0; m < mats.size(); ++m) {
    rhs.push_back(gen::random_rhs<double>(mats[m].nrows, 21 + (int)m));
    std::unique_ptr<BlockSolver<double>> s;
    ASSERT_TRUE(BlockSolver<double>::create(mats[m], opt, &s).ok());
    refs.push_back(s->solve(rhs.back()));
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&, t] {
      for (int it = 0; it < kIters; ++it) {
        const std::size_t m = static_cast<std::size_t>(t + it) % mats.size();
        std::unique_ptr<BlockSolver<double>> s;
        if (!BlockSolver<double>::create(mats[m], opt, &s, &cache).ok() ||
            s->solve(rhs[m]) != refs[m])
          failures.fetch_add(1);
      }
    });
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);
  const PlanCacheStats st = cache.stats();
  EXPECT_EQ(st.hits + st.misses,
            static_cast<std::uint64_t>(kThreads * kIters));
  EXPECT_LE(st.entries, mats.size());
}

// --- Fault injection on the byte stream ------------------------------------

class PersistFault : public ::testing::Test {
 protected:
  void SetUp() override {
    L_ = fixture<double>(0);
    auto opt = small_block_options<double>();
    ASSERT_TRUE(BlockSolver<double>::create(L_, opt, &solver_).ok());
    // Unique per test: the suite runs under a parallel ctest.
    path_ = artifact_path(
        std::string("fault_") +
        ::testing::UnitTest::GetInstance()->current_test_info()->name());
    ASSERT_TRUE(solver_->save_artifact(path_).ok());
    bytes_ = read_file(path_);
    ASSERT_GT(bytes_.size(), 64u);
  }
  void TearDown() override { std::remove(path_.c_str()); }

  Status load_mutated(const std::string& bytes) {
    write_file(path_, bytes);
    PlanArtifact<double> art;
    return load_artifact(path_, &art);
  }

  Csr<double> L_;
  std::unique_ptr<BlockSolver<double>> solver_;
  std::string path_;
  std::string bytes_;
};

TEST_F(PersistFault, TruncationSweepNeverCrashes) {
  // Every header byte boundary, then a coarse sweep through the sections.
  std::vector<std::size_t> cuts;
  for (std::size_t c = 0; c < 64; ++c) cuts.push_back(c);
  for (std::size_t c = 64; c < bytes_.size(); c += bytes_.size() / 97 + 1)
    cuts.push_back(c);
  for (const std::size_t cut : cuts) {
    const Status st = load_mutated(bytes_.substr(0, cut));
    ASSERT_FALSE(st.ok()) << "cut at " << cut;
    EXPECT_EQ(st.code(), StatusCode::kTruncated) << "cut at " << cut;
    EXPECT_GE(st.location(), 0) << "cut at " << cut;  // byte offset reported
  }
}

TEST_F(PersistFault, FlippedMagic) {
  std::string b = bytes_;
  b[0] = 'X';
  EXPECT_EQ(load_mutated(b).code(), StatusCode::kBadFormat);
}

TEST_F(PersistFault, FutureVersion) {
  std::string b = bytes_;
  // Version is the little-endian u32 right after the magic; anything past
  // the newest readable version must be rejected (versions up to
  // kArtifactFormatVersion are all legal).
  b[4] = static_cast<char>(kArtifactFormatVersion + 1);
  EXPECT_EQ(load_mutated(b).code(), StatusCode::kVersionMismatch);
}

TEST_F(PersistFault, ZeroVersion) {
  std::string b = bytes_;
  b[4] = 0;
  EXPECT_EQ(load_mutated(b).code(), StatusCode::kVersionMismatch);
}

TEST_F(PersistFault, WrongValueWidth) {
  // Loading a double artifact as float must fail typed, not misread.
  write_file(path_, bytes_);
  PlanArtifact<float> art;
  EXPECT_EQ(load_artifact(path_, &art).code(), StatusCode::kBadFormat);
}

TEST_F(PersistFault, CorruptedSectionPayload) {
  // Flip one byte well inside the first section payload: CRC32 must catch
  // it and name the section's byte offset.
  std::string b = bytes_;
  const std::size_t victim = 80;
  b[victim] = static_cast<char>(b[victim] ^ 0x40);
  const Status st = load_mutated(b);
  EXPECT_EQ(st.code(), StatusCode::kChecksumMismatch);
  EXPECT_GE(st.location(), 0);
}

TEST_F(PersistFault, CorruptionSweepAlwaysTyped) {
  // XOR a bit at every 131st byte: any of the typed rejections is fine,
  // silence or a crash is not.
  for (std::size_t pos = 0; pos < bytes_.size(); pos += 131) {
    std::string b = bytes_;
    b[pos] = static_cast<char>(b[pos] ^ 0x10);
    const Status st = load_mutated(b);
    if (st.ok()) {
      // Only acceptable for bytes the format does not interpret strictly
      // (e.g. a bit inside the header's structure hash makes a *different*,
      // still-wellformed artifact — create_from_file still rejects it).
      PlanArtifact<double> art;
      ASSERT_TRUE(load_artifact(path_, &art).ok());
      continue;
    }
    EXPECT_NE(st.code(), StatusCode::kInternal) << "byte " << pos;
  }
}

TEST_F(PersistFault, HeaderStructureHashTamperRejectedOnUse) {
  // The structure hash lives at bytes [16, 24). Tampering makes load
  // succeed (header is not CRC-guarded) but the solve-path entry point
  // rejects the artifact against the real matrix.
  std::string b = bytes_;
  b[16] = static_cast<char>(b[16] ^ 0x01);
  write_file(path_, b);
  std::unique_ptr<BlockSolver<double>> s;
  auto opt = small_block_options<double>();
  EXPECT_EQ(
      BlockSolver<double>::create_from_file(path_, L_, opt, &s).code(),
      StatusCode::kStructureMismatch);
}

TEST_F(PersistFault, StructureMismatchAgainstOtherMatrix) {
  std::unique_ptr<BlockSolver<double>> s;
  auto opt = small_block_options<double>();
  EXPECT_EQ(BlockSolver<double>::create_from_file(path_, fixture<double>(1),
                                                  opt, &s)
                .code(),
            StatusCode::kStructureMismatch);
}

TEST_F(PersistFault, OptionsMismatchTyped) {
  PlanArtifact<double> art;
  ASSERT_TRUE(load_artifact(path_, &art).ok());
  auto other = small_block_options<double>();
  other.planner.stop_rows = 32;
  std::unique_ptr<BlockSolver<double>> s;
  EXPECT_EQ(BlockSolver<double>::create_from_artifact(
                std::make_shared<PlanArtifact<double>>(std::move(art)), other,
                &s)
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(PersistFault, MissingFile) {
  PlanArtifact<double> art;
  EXPECT_EQ(load_artifact(::testing::TempDir() + "does_not_exist.btpa", &art)
                .code(),
            StatusCode::kBadFormat);
}

TEST_F(PersistFault, EmptyFile) {
  EXPECT_EQ(load_mutated("").code(), StatusCode::kTruncated);
}

TEST_F(PersistFault, ReadErrorIsIoErrorNotTruncated) {
  // fopen("rb") on a directory succeeds on Linux but the first fread fails
  // with EISDIR and sets ferror — the mid-stream I/O failure class that must
  // surface as kIoError (naming the path), not masquerade as a short file.
  PlanArtifact<double> art;
  const Status st = load_artifact(::testing::TempDir(), &art);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  EXPECT_NE(st.message().find(::testing::TempDir()), std::string::npos);
}

// --- Semantic corruption: CRC-valid but hostile contents --------------------
//
// The executors index with artifact contents unchecked (permute_vector
// writes out[new_of_old[i]], spmv writes y[row_ids[r]], kernels read
// x[col_idx[k]], the sync-free busy-wait counts down in_degree), so
// validate_artifact must prove every stored index in-bounds and every
// invariant the kernels assume. Each test corrupts ONE field of a
// legitimately captured artifact and expects the typed kBadFormat rejection
// from both validate_artifact and the rehydration entry point — never a
// crash, never a silently wrong solver.

class PersistSemantic : public ::testing::Test {
 protected:
  PlanArtifact<double> capture(TriKernelKind tri, SpmvKernelKind sq) {
    L_ = fixture<double>(0);
    opt_ = small_block_options<double>();
    opt_.adaptive = false;
    opt_.forced_tri = tri;
    opt_.forced_square = sq;
    std::unique_ptr<BlockSolver<double>> s;
    EXPECT_TRUE(BlockSolver<double>::create(L_, opt_, &s).ok());
    return s->capture_artifact();
  }

  void expect_rejected(PlanArtifact<double> art, const char* why) {
    EXPECT_EQ(validate_artifact(art).code(), StatusCode::kBadFormat) << why;
    std::unique_ptr<BlockSolver<double>> s;
    EXPECT_EQ(BlockSolver<double>::create_from_artifact(
                  std::make_shared<PlanArtifact<double>>(std::move(art)),
                  opt_, &s)
                  .code(),
              StatusCode::kBadFormat)
        << why;
  }

  PlanArtifact<double> capture_hbmc() {
    // The banded fixture keeps several colors after aggregation (grid2d
    // collapses to one via the W-doubling fallback), so the interior-bound
    // corruptions below have bounds to corrupt.
    L_ = fixture<double>(1);
    opt_ = small_block_options<double>(BlockScheme::kHbmc);
    std::unique_ptr<BlockSolver<double>> s;
    EXPECT_TRUE(BlockSolver<double>::create(L_, opt_, &s).ok());
    return s->capture_artifact();
  }

  Csr<double> L_;
  BlockSolver<double>::Options opt_;
};

TEST_F(PersistSemantic, NonBijectivePermutation) {
  auto art = capture(TriKernelKind::kSyncFree, SpmvKernelKind::kScalarCsr);
  ASSERT_GE(art.plan.n, 2);
  art.plan.new_of_old[0] = art.plan.new_of_old[1];  // duplicate target
  expect_rejected(std::move(art), "duplicate permutation target");
}

TEST_F(PersistSemantic, PermutationTargetOutOfRange) {
  auto art = capture(TriKernelKind::kSyncFree, SpmvKernelKind::kScalarCsr);
  ASSERT_GE(art.plan.n, 1);
  art.plan.new_of_old[0] = art.plan.n;  // permute_vector would write out[n]
  expect_rejected(std::move(art), "permutation target out of range");
}

TEST_F(PersistSemantic, SquareCsrColumnOutOfRange) {
  auto art = capture(TriKernelKind::kSyncFree, SpmvKernelKind::kScalarCsr);
  for (auto& b : art.squares) {
    if (b.csr.col_idx.empty()) continue;
    b.csr.col_idx[0] = b.csr.ncols;  // kernels would read x[ncols]
    expect_rejected(std::move(art), "square CSR column out of range");
    return;
  }
  GTEST_SKIP() << "fixture produced no non-empty CSR square";
}

TEST_F(PersistSemantic, DcsrRowIdOutOfRange) {
  auto art = capture(TriKernelKind::kSyncFree, SpmvKernelKind::kVectorDcsr);
  for (auto& b : art.squares) {
    if (b.dcsr.row_ids.empty()) continue;
    b.dcsr.row_ids[0] = b.dcsr.nrows;  // spmv would write y[nrows]
    expect_rejected(std::move(art), "DCSR row id out of range");
    return;
  }
  GTEST_SKIP() << "fixture produced no non-empty DCSR square";
}

TEST_F(PersistSemantic, LevelItemOutOfRange) {
  auto art = capture(TriKernelKind::kLevelSet, SpmvKernelKind::kScalarCsr);
  for (auto& b : art.tri) {
    if (b.kind != TriKernelKind::kLevelSet || b.levels.level_item.empty())
      continue;
    b.levels.level_item[0] = b.r1 - b.r0;  // solver reads rows[len]
    expect_rejected(std::move(art), "level item out of range");
    return;
  }
  GTEST_SKIP() << "fixture produced no level-set block";
}

TEST_F(PersistSemantic, SyncFreeInDegreeMismatch) {
  auto art = capture(TriKernelKind::kSyncFree, SpmvKernelKind::kScalarCsr);
  for (auto& b : art.tri) {
    if (b.kind != TriKernelKind::kSyncFree || b.in_degree.empty()) continue;
    ++b.in_degree[0];  // busy-wait would never see the count reach zero
    expect_rejected(std::move(art), "in-degree disagrees with strict rows");
    return;
  }
  GTEST_SKIP() << "fixture produced no sync-free block";
}

TEST_F(PersistSemantic, GarbageStepKind) {
  auto art = capture(TriKernelKind::kSyncFree, SpmvKernelKind::kScalarCsr);
  ASSERT_FALSE(art.plan.steps.empty());
  art.plan.steps[0].kind = static_cast<ExecStep::Kind>(7);
  expect_rejected(std::move(art), "execution step kind out of range");
}

TEST_F(PersistSemantic, StepIndexOutOfRange) {
  auto art = capture(TriKernelKind::kSyncFree, SpmvKernelKind::kScalarCsr);
  ASSERT_FALSE(art.plan.steps.empty());
  art.plan.steps[0].index = index_t{1} << 20;
  expect_rejected(std::move(art), "execution step index out of range");
}

TEST_F(PersistSemantic, GarbageSquareKernelKind) {
  auto art = capture(TriKernelKind::kSyncFree, SpmvKernelKind::kScalarCsr);
  if (art.squares.empty()) GTEST_SKIP() << "fixture produced no squares";
  art.squares[0].kind = static_cast<SpmvKernelKind>(99);
  expect_rejected(std::move(art), "square kernel kind out of range");
}

TEST_F(PersistSemantic, GarbageScheme) {
  auto art = capture(TriKernelKind::kSyncFree, SpmvKernelKind::kScalarCsr);
  art.plan.scheme = static_cast<BlockScheme>(42);
  expect_rejected(std::move(art), "block scheme out of range");
}

// One-field-at-a-time corruption of the color record (format v4). The color
// bounds drive the shard planner's cut points and the executor's wave
// schedule, so every invariant validate_artifact promises about them is
// exercised here the same way the kernel-facing fields are above.

TEST_F(PersistSemantic, ColorBoundsMissingOnHbmcPlan) {
  auto art = capture_hbmc();
  ASSERT_EQ(art.plan.scheme, BlockScheme::kHbmc);
  art.plan.color_bounds.clear();
  expect_rejected(std::move(art), "hbmc plan without color bounds");
}

TEST_F(PersistSemantic, ColorBoundsOnNonHbmcScheme) {
  auto art = capture_hbmc();
  art.plan.scheme = BlockScheme::kRecursive;  // bounds now claim the wrong scheme
  expect_rejected(std::move(art), "color bounds on a non-hbmc scheme");
}

TEST_F(PersistSemantic, NonPositiveColorBlockSize) {
  auto art = capture_hbmc();
  art.plan.hbmc_block_rows = 0;
  expect_rejected(std::move(art), "non-positive aggregation block size");
}

TEST_F(PersistSemantic, ColorBoundsDoNotStartAtZero) {
  auto art = capture_hbmc();
  ASSERT_GE(art.plan.color_bounds.size(), 2u);
  art.plan.color_bounds.front() = 1;
  expect_rejected(std::move(art), "color bounds do not start at row 0");
}

TEST_F(PersistSemantic, ColorBoundsDoNotEndAtN) {
  auto art = capture_hbmc();
  ASSERT_GE(art.plan.color_bounds.size(), 2u);
  art.plan.color_bounds.back() = art.plan.n - 1;
  expect_rejected(std::move(art), "color bounds do not end at n");
}

TEST_F(PersistSemantic, NonAscendingColorBounds) {
  // Equal adjacent bounds (an empty color) are tolerated like empty tri
  // leaves; a genuinely DESCENDING pair is not. Jump the first interior
  // bound to n — still on the leaf grid, so only ordering can reject it.
  auto art = capture_hbmc();
  if (art.plan.color_bounds.size() < 4)
    GTEST_SKIP() << "fixture aggregated to fewer than three colors";
  art.plan.color_bounds[1] = art.plan.n;
  expect_rejected(std::move(art), "non-ascending color bounds");
}

TEST_F(PersistSemantic, ColorBoundOffTheLeafGrid) {
  // A color boundary that does not land on a triangular leaf bound would
  // split a tri block across two sync colors — the executor has no step for
  // that. Nudge an interior bound to a row that is NOT a leaf bound.
  auto art = capture_hbmc();
  const auto& tb = art.plan.tri_bounds;
  auto& cb = art.plan.color_bounds;
  for (std::size_t i = 1; i + 1 < cb.size(); ++i) {
    const index_t v = cb[i] + 1;
    if (v >= cb[i + 1]) continue;  // must stay strictly ascending
    if (std::find(tb.begin(), tb.end(), v) != tb.end()) continue;
    cb[i] = v;
    expect_rejected(std::move(art), "color bound off the tri leaf grid");
    return;
  }
  GTEST_SKIP() << "every candidate nudge lands on a leaf bound";
}

TEST_F(PersistSemantic, SaveRefusesCorruptArtifact) {
  auto art = capture(TriKernelKind::kSyncFree, SpmvKernelKind::kScalarCsr);
  ASSERT_GE(art.plan.n, 2);
  art.plan.new_of_old[0] = art.plan.new_of_old[1];
  const std::string path = artifact_path("refuse_corrupt");
  EXPECT_EQ(save_artifact(path, art).code(), StatusCode::kBadFormat);
  std::ifstream is(path, std::ios::binary);
  EXPECT_FALSE(is.good());  // nothing written
}

// --- Misc ------------------------------------------------------------------

TEST(PersistMisc, StructureHashDiscriminatesAndIsStable) {
  const Csr<double> a = fixture<double>(0);
  const Csr<double> b = fixture<double>(1);
  EXPECT_EQ(structure_hash(a), structure_hash(a));
  EXPECT_NE(structure_hash(a), structure_hash(b));
  Csr<double> scaled = a;
  for (double& v : scaled.val) v *= 3.0;
  EXPECT_EQ(structure_hash(a), structure_hash(scaled));  // values don't count
}

TEST(PersistMisc, ArtifactBytesTracksContent) {
  auto opt = small_block_options<double>();
  std::unique_ptr<BlockSolver<double>> small, big;
  ASSERT_TRUE(BlockSolver<double>::create(fixture<double>(0), opt, &small)
                  .ok());
  ASSERT_TRUE(
      BlockSolver<double>::create(fixture<double>(2), opt, &big).ok());
  const auto sb = artifact_bytes(small->capture_artifact());
  const auto bb = artifact_bytes(big->capture_artifact());
  EXPECT_GT(sb, 0u);
  EXPECT_GT(bb, sb);  // rndlevels(1500, nnz~3/row) outweighs grid2d(1000)
}

TEST(PersistMisc, SaveIsAtomicNoTmpLeftBehind) {
  const Csr<double> L = fixture<double>(0);
  auto opt = small_block_options<double>();
  std::unique_ptr<BlockSolver<double>> s;
  ASSERT_TRUE(BlockSolver<double>::create(L, opt, &s).ok());
  const std::string path = artifact_path("atomic");
  ASSERT_TRUE(s->save_artifact(path).ok());
  std::ifstream tmp(path + ".tmp", std::ios::binary);
  EXPECT_FALSE(tmp.good());
  std::remove(path.c_str());
}

TEST(PersistMisc, SaveToUnwritablePathIsTyped) {
  const Csr<double> L = fixture<double>(0);
  auto opt = small_block_options<double>();
  std::unique_ptr<BlockSolver<double>> s;
  ASSERT_TRUE(BlockSolver<double>::create(L, opt, &s).ok());
  EXPECT_EQ(s->save_artifact("/nonexistent_dir_xyz/a.btpa").code(),
            StatusCode::kBadFormat);
}

}  // namespace
}  // namespace blocktri
