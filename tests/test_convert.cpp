// Conversion round-trip and property tests (COO/CSR/CSC/DCSR, transpose).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "gen/generators.hpp"
#include "sparse/convert.hpp"
#include "sparse/dense.hpp"

namespace blocktri {
namespace {

Coo<double> random_coo(index_t nrows, index_t ncols, offset_t nnz,
                       std::uint64_t seed) {
  Rng rng(seed);
  Coo<double> a;
  a.nrows = nrows;
  a.ncols = ncols;
  for (offset_t k = 0; k < nnz; ++k) {
    a.row.push_back(static_cast<index_t>(rng.uniform_int(0, nrows - 1)));
    a.col.push_back(static_cast<index_t>(rng.uniform_int(0, ncols - 1)));
    a.val.push_back(rng.uniform(-1, 1));
  }
  return a;
}

TEST(Convert, CooToCsrSumsDuplicates) {
  Coo<double> a;
  a.nrows = 2;
  a.ncols = 2;
  a.row = {0, 0, 1, 0};
  a.col = {1, 0, 1, 1};
  a.val = {2.0, 1.0, 5.0, 3.0};
  const auto csr = coo_to_csr(a);
  validate(csr);
  EXPECT_EQ(csr.nnz(), 3);
  EXPECT_EQ(csr.col_idx, (std::vector<index_t>{0, 1, 1}));
  EXPECT_DOUBLE_EQ(csr.val[1], 5.0);  // 2 + 3 summed
}

TEST(Convert, CsrCooRoundTrip) {
  const auto L = gen::power_law(300, 2.0, 64, 4.0, 1);
  const auto rt = coo_to_csr(csr_to_coo(L));
  EXPECT_TRUE(equals(L, rt));
}

TEST(Convert, CsrCscRoundTrip) {
  const auto L = gen::grid2d(17, 13, 2);
  const auto csc = csr_to_csc(L);
  validate(csc);
  EXPECT_TRUE(equals(L, csc_to_csr(csc)));
}

TEST(Convert, CscMatchesDense) {
  const auto L = gen::banded(50, 6, 2.0, 3);
  const auto csc = csr_to_csc(L);
  // Column j of CSC must contain exactly the rows with dense[i][j] != 0.
  const auto d = to_dense(L);
  for (index_t j = 0; j < L.ncols; ++j) {
    std::vector<index_t> rows;
    for (index_t i = 0; i < L.nrows; ++i)
      if (d[static_cast<std::size_t>(i) * L.ncols + j] != 0.0)
        rows.push_back(i);
    std::vector<index_t> got(
        csc.row_idx.begin() + csc.col_ptr[static_cast<std::size_t>(j)],
        csc.row_idx.begin() + csc.col_ptr[static_cast<std::size_t>(j) + 1]);
    EXPECT_EQ(got, rows) << "column " << j;
  }
}

TEST(Convert, TransposeTwiceIsIdentity) {
  const auto L = gen::kkt_structure(400, 8, 3.0, 4);
  EXPECT_TRUE(equals(L, transpose(transpose(L))));
}

TEST(Convert, TransposeMatchesDense) {
  const auto a = coo_to_csr(random_coo(20, 35, 100, 5));
  const auto at = transpose(a);
  EXPECT_EQ(at.nrows, 35);
  EXPECT_EQ(at.ncols, 20);
  const auto d = to_dense(a);
  const auto dt = to_dense(at);
  for (index_t i = 0; i < 20; ++i)
    for (index_t j = 0; j < 35; ++j)
      EXPECT_EQ(d[static_cast<std::size_t>(i) * 35 + j],
                dt[static_cast<std::size_t>(j) * 20 + i]);
}

TEST(Convert, DcsrRoundTripWithEmptyRows) {
  // Construct a matrix with many empty rows via a rectangular block shape.
  Coo<double> a;
  a.nrows = 100;
  a.ncols = 10;
  a.row = {3, 3, 50, 99};
  a.col = {1, 7, 0, 9};
  a.val = {1, 2, 3, 4};
  const auto csr = coo_to_csr(a);
  const auto dcsr = csr_to_dcsr(csr);
  validate(dcsr);
  EXPECT_EQ(dcsr.nnz_rows(), 3);
  EXPECT_EQ(dcsr.row_ids, (std::vector<index_t>{3, 50, 99}));
  EXPECT_TRUE(equals(csr, dcsr_to_csr(dcsr)));
}

TEST(Convert, DcsrOnFullMatrixKeepsAllRows) {
  const auto L = gen::tridiag_chain(40, 6);
  const auto dcsr = csr_to_dcsr(L);
  EXPECT_EQ(dcsr.nnz_rows(), 40);
  EXPECT_TRUE(equals(L, dcsr_to_csr(dcsr)));
}

TEST(Convert, EmptyRowRatio) {
  Coo<double> a;
  a.nrows = 4;
  a.ncols = 4;
  a.row = {1};
  a.col = {0};
  a.val = {1};
  EXPECT_DOUBLE_EQ(empty_row_ratio(coo_to_csr(a)), 0.75);
  EXPECT_DOUBLE_EQ(empty_row_ratio(gen::diagonal(10, 1)), 0.0);
}

TEST(Convert, EmptyMatrixConversions) {
  Coo<double> a;
  a.nrows = 0;
  a.ncols = 0;
  const auto csr = coo_to_csr(a);
  EXPECT_EQ(csr.nnz(), 0);
  const auto csc = csr_to_csc(csr);
  EXPECT_EQ(csc.nnz(), 0);
  const auto dcsr = csr_to_dcsr(csr);
  EXPECT_EQ(dcsr.nnz_rows(), 0);
}

// Property sweep: random rectangular COO matrices round-trip through every
// format losslessly after canonicalisation.
class ConvertRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(ConvertRoundTrip, AllFormats) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Rng shape(seed * 977 + 1);
  const auto nrows = static_cast<index_t>(shape.uniform_int(1, 80));
  const auto ncols = static_cast<index_t>(shape.uniform_int(1, 80));
  const auto nnz = static_cast<offset_t>(
      shape.uniform_int(0, static_cast<std::int64_t>(nrows) * ncols / 2));
  const auto csr = coo_to_csr(random_coo(nrows, ncols, nnz, seed));
  validate(csr);

  EXPECT_TRUE(equals(csr, csc_to_csr(csr_to_csc(csr))));
  EXPECT_TRUE(equals(csr, coo_to_csr(csr_to_coo(csr))));
  EXPECT_TRUE(equals(csr, dcsr_to_csr(csr_to_dcsr(csr))));
  EXPECT_TRUE(equals(csr, transpose(transpose(csr))));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConvertRoundTrip, ::testing::Range(0, 25));

}  // namespace
}  // namespace blocktri
