// Baseline SpTRSV solver tests: every parallel solver must match the serial
// oracle (Algorithm 1) on every structural family, in both precisions, and
// the simulated launch/sync accounting must match each algorithm's design.
#include <gtest/gtest.h>

#include "gen/generators.hpp"
#include "helpers.hpp"
#include "sim/kernel_sim.hpp"
#include "sparse/dense.hpp"
#include "sptrsv/cusparse_like.hpp"
#include "sptrsv/diagonal.hpp"
#include "sptrsv/levelset.hpp"
#include "sptrsv/serial.hpp"
#include "sptrsv/syncfree.hpp"

namespace blocktri {
namespace {

using blocktri::testing::default_tol;
using blocktri::testing::test_matrices;
using blocktri::testing::VectorsNear;

TEST(Serial, MatchesDenseOracle) {
  const auto L = gen::dense_lower(60, 0.4, 1);
  const auto b = gen::random_rhs<double>(60, 2);
  const auto x = sptrsv_serial(L, b);
  const auto want = dense_lower_solve(to_dense(L), 60, b);
  EXPECT_TRUE(VectorsNear(x, want, 1e-12));
}

TEST(Serial, RejectsSingular) {
  auto L = gen::tridiag_chain(5, 1);
  L.val[L.val.size() - 1] = 0.0;  // kill the last diagonal
  EXPECT_THROW(sptrsv_serial(L, std::vector<double>(5, 1.0)), Error);
}

TEST(Serial, SolvesIdentityLikeSystem) {
  const auto L = gen::diagonal(10, 3);
  std::vector<double> b(10, 2.0);
  const auto x = sptrsv_serial(L, b);
  for (index_t i = 0; i < 10; ++i)
    EXPECT_DOUBLE_EQ(x[static_cast<std::size_t>(i)],
                     2.0 / L.val[static_cast<std::size_t>(i)]);
}

enum class Baseline { kLevelSet, kSyncFree, kCusparseLike };

std::string baseline_name(Baseline b) {
  switch (b) {
    case Baseline::kLevelSet: return "levelset";
    case Baseline::kSyncFree: return "syncfree";
    case Baseline::kCusparseLike: return "cusparselike";
  }
  return "?";
}

template <class T>
std::vector<T> run_baseline(Baseline which, const Csr<T>& L,
                            const std::vector<T>& b,
                            const TrsvSim* s = nullptr) {
  std::vector<T> x(static_cast<std::size_t>(L.nrows));
  switch (which) {
    case Baseline::kLevelSet: {
      LevelSetSolver<T> solver(L);
      solver.solve(b.data(), x.data(), s);
      break;
    }
    case Baseline::kSyncFree: {
      SyncFreeSolver<T> solver(L);
      solver.solve(b.data(), x.data(), s);
      break;
    }
    case Baseline::kCusparseLike: {
      CusparseLikeSolver<T> solver(L);
      solver.solve(b.data(), x.data(), s);
      break;
    }
  }
  return x;
}

// Cross product: baseline x structural family.
class BaselineOnMatrix
    : public ::testing::TestWithParam<std::tuple<Baseline, int>> {};

TEST_P(BaselineOnMatrix, MatchesSerialDouble) {
  const auto [which, mat_idx] = GetParam();
  const auto tm = test_matrices()[static_cast<std::size_t>(mat_idx)];
  const auto L = tm.build();
  const auto b = gen::random_rhs<double>(L.nrows, 42);
  const auto want = sptrsv_serial(L, b);
  const auto got = run_baseline(which, L, b);
  EXPECT_TRUE(VectorsNear(got, want, default_tol<double>())) << tm.name;
}

TEST_P(BaselineOnMatrix, MatchesSerialFloat) {
  const auto [which, mat_idx] = GetParam();
  const auto tm = test_matrices()[static_cast<std::size_t>(mat_idx)];
  const auto Lf = gen::convert_values<float>(tm.build());
  const auto b = gen::random_rhs<float>(Lf.nrows, 43);
  const auto want = sptrsv_serial(Lf, b);
  const auto got = run_baseline(which, Lf, b);
  EXPECT_TRUE(VectorsNear(got, want, default_tol<float>())) << tm.name;
}

TEST_P(BaselineOnMatrix, SimulatedSolveSameResultAndPositiveTime) {
  const auto [which, mat_idx] = GetParam();
  const auto tm = test_matrices()[static_cast<std::size_t>(mat_idx)];
  const auto L = tm.build();
  const auto b = gen::random_rhs<double>(L.nrows, 44);
  const auto want = run_baseline(which, L, b);

  const auto gpu = sim::titan_rtx();
  sim::CacheModel cache(gpu.cache_bytes, gpu.cache_line_bytes,
                        gpu.cache_assoc);
  sim::SolveReport rep;
  TrsvSim ts;
  ts.gpu = &gpu;
  ts.cache = &cache;
  ts.fp64 = true;
  ts.x_base = 0;
  ts.b_base = 1u << 26;
  ts.aux_base = 1u << 27;
  ts.report = &rep;
  const auto got = run_baseline(which, L, b, &ts);
  EXPECT_EQ(got, want);  // simulation must not perturb the numerics
  EXPECT_GT(rep.ns, 0.0);
  EXPECT_EQ(rep.flops, 2 * L.nnz());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BaselineOnMatrix,
    ::testing::Combine(::testing::Values(Baseline::kLevelSet,
                                         Baseline::kSyncFree,
                                         Baseline::kCusparseLike),
                       ::testing::Range(0, static_cast<int>(
                                               test_matrices().size()))),
    [](const ::testing::TestParamInfo<std::tuple<Baseline, int>>& info) {
      return baseline_name(std::get<0>(info.param)) + "_" +
             test_matrices()[static_cast<std::size_t>(
                                 std::get<1>(info.param))].name;
    });

TEST(LevelSet, LaunchesOneKernelPerLevel) {
  const auto L = gen::random_levels(2000, 37, 2.0, 1.0, 5);
  const auto b = gen::random_rhs<double>(2000, 6);
  LevelSetSolver<double> solver(L);
  EXPECT_EQ(solver.levels().nlevels, 37);

  const auto gpu = sim::titan_rtx();
  sim::SolveReport rep;
  TrsvSim ts;
  ts.gpu = &gpu;
  ts.cache = nullptr;
  ts.fp64 = true;
  ts.report = &rep;
  std::vector<double> x(2000);
  solver.solve(b.data(), x.data(), &ts);
  EXPECT_EQ(rep.kernel_launches, 37);
  EXPECT_EQ(rep.grid_syncs, 0);
}

TEST(SyncFree, OneSolveKernelPlusReset) {
  const auto L = gen::kkt_structure(3000, 21, 3.0, 7);
  const auto b = gen::random_rhs<double>(3000, 8);
  SyncFreeSolver<double> solver(L);

  const auto gpu = sim::titan_rtx();
  sim::SolveReport rep;
  TrsvSim ts;
  ts.gpu = &gpu;
  ts.cache = nullptr;
  ts.fp64 = true;
  ts.report = &rep;
  std::vector<double> x(3000);
  solver.solve(b.data(), x.data(), &ts);
  // One launch for the whole solve — the algorithm's selling point — plus
  // one for resetting left_sum / in_degree.
  EXPECT_EQ(rep.kernel_launches, 2);
  EXPECT_EQ(rep.grid_syncs, 0);
}

TEST(SyncFree, InDegreesMatchStrictRows) {
  const auto L = blocktri::testing::figure1_matrix();
  SyncFreeSolver<double> solver(L);
  EXPECT_EQ(solver.in_degree(),
            (std::vector<index_t>{0, 0, 1, 1, 1, 2, 0, 2}));
}

TEST(CusparseLike, MergesSmallLevels) {
  // 500 levels of ~width 2 with budget 64: expect far fewer kernels than
  // levels, but more than one.
  const auto L = gen::random_levels(1000, 500, 1.0, 1.0, 9);
  CusparseLikeSolver<double> solver(L, /*merge_component_budget=*/64);
  EXPECT_LT(solver.num_merged_kernels(), 100);
  EXPECT_GT(solver.num_merged_kernels(), 5);

  const auto gpu = sim::titan_rtx();
  sim::SolveReport rep;
  TrsvSim ts;
  ts.gpu = &gpu;
  ts.cache = nullptr;
  ts.fp64 = true;
  ts.report = &rep;
  std::vector<double> x(1000);
  const auto b = gen::random_rhs<double>(1000, 10);
  solver.solve(b.data(), x.data(), &ts);
  EXPECT_EQ(rep.kernel_launches, solver.num_merged_kernels());
  EXPECT_EQ(rep.kernel_launches + rep.grid_syncs, 500);
}

TEST(CusparseLike, WideLevelsGetOwnKernels) {
  const auto L = gen::random_levels(4000, 4, 2.0, 1.0, 11);  // 4 wide levels
  CusparseLikeSolver<double> solver(L, 64);
  EXPECT_EQ(solver.num_merged_kernels(), 4);
}

TEST(Diagonal, SolvesAndSimulates) {
  std::vector<double> diag = {2.0, -4.0, 0.5};
  DiagonalSolver<double> solver(diag);
  const std::vector<double> b = {2.0, 8.0, 1.0};
  std::vector<double> x(3);
  solver.solve(b.data(), x.data(), nullptr);
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  EXPECT_DOUBLE_EQ(x[1], -2.0);
  EXPECT_DOUBLE_EQ(x[2], 2.0);

  const auto gpu = sim::titan_rtx();
  sim::SolveReport rep;
  TrsvSim ts;
  ts.gpu = &gpu;
  ts.cache = nullptr;
  ts.fp64 = true;
  ts.report = &rep;
  solver.solve(b.data(), x.data(), &ts);
  EXPECT_EQ(rep.kernel_launches, 1);
  EXPECT_GT(rep.ns, 0.0);
}

TEST(Diagonal, RejectsZeroDiagonal) {
  EXPECT_THROW(DiagonalSolver<double>({1.0, 0.0}), Error);
}

TEST(Baselines, DeepChainCostOrdering) {
  // On a serial chain, the sync-free critical path and the cuSPARSE-like
  // merged-sync path should both be far slower per component than on a wide
  // matrix — and the level-set method (one launch per level) slowest of all.
  const auto L = gen::tridiag_chain(4000, 12);
  const auto b = gen::random_rhs<double>(4000, 13);
  const auto gpu = sim::titan_rtx();

  auto simulate = [&](Baseline which) {
    sim::SolveReport rep;
    TrsvSim ts;
    ts.gpu = &gpu;
    ts.cache = nullptr;
    ts.fp64 = true;
    ts.report = &rep;
    run_baseline(which, L, b, &ts);
    return rep.ns;
  };
  const double ls = simulate(Baseline::kLevelSet);
  const double sf = simulate(Baseline::kSyncFree);
  const double cu = simulate(Baseline::kCusparseLike);
  EXPECT_GT(ls, cu);  // per-level launches dwarf merged-level syncs
  EXPECT_GT(ls, sf);
  // All should be dominated by per-level serialisation, not bandwidth.
  EXPECT_GT(cu, 4000 * 0.5 * gpu.grid_sync_ns);
}

}  // namespace
}  // namespace blocktri
