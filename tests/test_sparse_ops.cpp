// Tests for permutation, triangular utilities, dense oracles and Matrix
// Market I/O.
#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <tuple>

#include "common/rng.hpp"
#include "gen/generators.hpp"
#include "sparse/convert.hpp"
#include "sparse/dense.hpp"
#include "sparse/mm_io.hpp"
#include "sparse/permute.hpp"
#include "sparse/triangular.hpp"

namespace blocktri {
namespace {

TEST(Permute, MatchesDenseOracle) {
  const auto a = gen::power_law(60, 2.0, 16, 3.0, 1);
  Rng rng(2);
  std::vector<index_t> perm(60);
  for (index_t i = 0; i < 60; ++i) perm[static_cast<std::size_t>(i)] = i;
  rng.shuffle(perm);

  const auto p = permute_symmetric(a, perm);
  validate(p);
  const auto da = to_dense(a);
  const auto dp = to_dense(p);
  for (index_t i = 0; i < 60; ++i)
    for (index_t j = 0; j < 60; ++j)
      EXPECT_EQ(dp[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)]) *
                       60 +
                   perm[static_cast<std::size_t>(j)]],
                da[static_cast<std::size_t>(i) * 60 + j]);
}

TEST(Permute, IdentityIsNoop) {
  const auto a = gen::grid2d(9, 7, 3);
  std::vector<index_t> id(static_cast<std::size_t>(a.nrows));
  for (index_t i = 0; i < a.nrows; ++i) id[static_cast<std::size_t>(i)] = i;
  EXPECT_TRUE(equals(a, permute_symmetric(a, id)));
}

TEST(Permute, RejectsNonPermutation) {
  const auto a = gen::diagonal(4, 1);
  EXPECT_THROW(permute_symmetric(a, {0, 0, 1, 2}), Error);
  EXPECT_THROW(permute_symmetric(a, {0, 1}), Error);
}

TEST(Permute, VectorRoundTrip) {
  const std::vector<double> v = {10, 20, 30, 40};
  const std::vector<index_t> perm = {2, 0, 3, 1};
  const auto p = permute_vector(v, perm);
  EXPECT_EQ(p, (std::vector<double>{20, 40, 10, 30}));
  EXPECT_EQ(unpermute_vector(p, perm), v);
}

TEST(Triangular, ExtractionAddsMissingDiagonal) {
  // Full (non-triangular) matrix with one missing and one zero diagonal.
  Coo<double> coo;
  coo.nrows = coo.ncols = 3;
  coo.row = {0, 0, 1, 2, 2, 1};
  coo.col = {0, 2, 0, 1, 2, 1};
  coo.val = {5, 9, 2, 3, 0, 0};  // (2,2) and (1,1) are explicit zeros
  const auto a = coo_to_csr(coo);
  const auto L = lower_triangular_with_diag(a, 1.0);
  validate(L);
  EXPECT_TRUE(is_lower_triangular_nonsingular(L));
  const auto d = to_dense(L);
  EXPECT_DOUBLE_EQ(d[0], 5.0);   // kept
  EXPECT_DOUBLE_EQ(d[4], 1.0);   // zero replaced
  EXPECT_DOUBLE_EQ(d[8], 1.0);   // zero replaced
  EXPECT_DOUBLE_EQ(d[2], 0.0);   // upper entry dropped
  EXPECT_DOUBLE_EQ(d[3], 2.0);   // lower entry kept
}

TEST(Triangular, IsLowerTriangularChecks) {
  EXPECT_TRUE(is_lower_triangular_nonsingular(gen::grid2d(5, 5, 1)));
  // Upper entry breaks it.
  Coo<double> coo;
  coo.nrows = coo.ncols = 2;
  coo.row = {0, 0, 1};
  coo.col = {0, 1, 1};
  coo.val = {1, 1, 1};
  EXPECT_FALSE(is_lower_triangular_nonsingular(coo_to_csr(coo)));
  // Missing diagonal breaks it.
  Coo<double> coo2;
  coo2.nrows = coo2.ncols = 2;
  coo2.row = {0, 1};
  coo2.col = {0, 0};
  coo2.val = {1, 1};
  EXPECT_FALSE(is_lower_triangular_nonsingular(coo_to_csr(coo2)));
}

namespace {

Csr<double> csr_from_triples(index_t n,
                             std::vector<std::tuple<index_t, index_t, double>>
                                 entries) {
  Coo<double> coo;
  coo.nrows = coo.ncols = n;
  for (const auto& [r, c, v] : entries) {
    coo.row.push_back(r);
    coo.col.push_back(c);
    coo.val.push_back(v);
  }
  return coo_to_csr(coo);
}

}  // namespace

TEST(Triangular, CheckEmptyMatrixIsVacuouslyOk) {
  Csr<double> a;
  a.nrows = a.ncols = 0;
  a.row_ptr = {0};
  EXPECT_TRUE(check_lower_triangular(a).ok());
  EXPECT_TRUE(is_lower_triangular_nonsingular(a));
}

TEST(Triangular, CheckOneByOneZeroDiagonal) {
  const auto a = csr_from_triples(1, {{0, 0, 0.0}});
  // coo_to_csr keeps explicit zeros; the pivot check must reject them.
  ASSERT_EQ(a.nnz(), 1);
  const Status st = check_lower_triangular(a);
  EXPECT_EQ(st.code(), StatusCode::kZeroPivot);
  EXPECT_EQ(st.location(), 0);
  EXPECT_FALSE(is_lower_triangular_nonsingular(a));
}

TEST(Triangular, CheckDiagonalIsLastInRowOrdering) {
  // Sorted CSR puts the diagonal last among lower entries; an upper entry
  // after it must be classified as not-triangular, not as a missing diagonal.
  const auto ok = csr_from_triples(3, {{0, 0, 1}, {2, 0, 4}, {2, 2, 5},
                                       {1, 1, 2}});
  EXPECT_TRUE(check_lower_triangular(ok).ok());
  const auto upper =
      csr_from_triples(3, {{0, 0, 1}, {1, 1, 2}, {1, 2, 7}, {2, 2, 5}});
  const Status st = check_lower_triangular(upper);
  EXPECT_EQ(st.code(), StatusCode::kNotTriangular);
  EXPECT_EQ(st.location(), 1);
}

TEST(Triangular, CheckExplicitZeroAndSubnormalDiagonal) {
  const auto zero =
      csr_from_triples(2, {{0, 0, 1}, {1, 0, 3}, {1, 1, 0.0}});
  const Status st = check_lower_triangular(zero);
  EXPECT_EQ(st.code(), StatusCode::kZeroPivot);
  EXPECT_EQ(st.location(), 1);

  const auto subnormal = csr_from_triples(
      2, {{0, 0, 1}, {1, 1, std::numeric_limits<double>::denorm_min()}});
  EXPECT_EQ(check_lower_triangular(subnormal).code(), StatusCode::kZeroPivot);
}

TEST(Triangular, CheckStructurallySingularRowReportsRow) {
  const auto missing =
      csr_from_triples(3, {{0, 0, 1}, {1, 0, 2}, {2, 0, 1}, {2, 2, 3}});
  const Status st = check_lower_triangular(missing);
  EXPECT_EQ(st.code(), StatusCode::kSingularRow);
  EXPECT_EQ(st.location(), 1);
  EXPECT_NE(st.to_string().find("row 1"), std::string::npos);
}

TEST(Triangular, CheckNonFiniteValue) {
  const auto nan_offdiag = csr_from_triples(
      2, {{0, 0, 1}, {1, 0, std::numeric_limits<double>::quiet_NaN()},
          {1, 1, 2}});
  const Status st = check_lower_triangular(nan_offdiag);
  EXPECT_EQ(st.code(), StatusCode::kNonFinite);
  EXPECT_EQ(st.location(), 1);
}

TEST(Triangular, SplitDiagonal) {
  const auto L = gen::banded(30, 4, 2.0, 5);
  const auto split = split_diagonal(L);
  validate(split.strict);
  EXPECT_EQ(split.strict.nnz() + L.nrows, L.nnz());
  for (index_t i = 0; i < L.nrows; ++i) {
    EXPECT_NE(split.diag[static_cast<std::size_t>(i)], 0.0);
    // No diagonal entries remain in the strict part.
    for (offset_t k = split.strict.row_ptr[static_cast<std::size_t>(i)];
         k < split.strict.row_ptr[static_cast<std::size_t>(i) + 1]; ++k)
      EXPECT_LT(split.strict.col_idx[static_cast<std::size_t>(k)], i);
  }
}

TEST(Triangular, ExtractBlockMatchesDenseWindow) {
  const auto a = gen::power_law(40, 2.0, 10, 3.0, 7);
  const auto blk = extract_block(a, 10, 30, 5, 25);
  validate(blk);
  EXPECT_EQ(blk.nrows, 20);
  EXPECT_EQ(blk.ncols, 20);
  const auto da = to_dense(a);
  const auto db = to_dense(blk);
  for (index_t i = 0; i < 20; ++i)
    for (index_t j = 0; j < 20; ++j)
      EXPECT_EQ(db[static_cast<std::size_t>(i) * 20 + j],
                da[static_cast<std::size_t>(i + 10) * 40 + (j + 5)]);
}

TEST(Triangular, ExtractBlockEmptyAndFull) {
  const auto a = gen::grid2d(6, 6, 9);
  const auto empty = extract_block(a, 3, 3, 0, 36);
  EXPECT_EQ(empty.nrows, 0);
  EXPECT_EQ(empty.nnz(), 0);
  const auto full = extract_block(a, 0, 36, 0, 36);
  EXPECT_TRUE(equals(a, full));
}

TEST(Triangular, CountBlockNnzMatchesExtraction) {
  const auto a = gen::kkt_structure(200, 6, 3.0, 11);
  for (const auto& [r0, r1, c0, c1] :
       {std::tuple<index_t, index_t, index_t, index_t>{0, 100, 0, 100},
        {50, 150, 0, 50},
        {100, 200, 100, 200},
        {0, 200, 0, 200}}) {
    EXPECT_EQ(count_block_nnz(a, r0, r1, c0, c1),
              extract_block(a, r0, r1, c0, c1).nnz());
  }
}

TEST(Dense, LowerSolveOracle) {
  // 3x3 hand-checked system.
  const std::vector<double> d = {2, 0, 0, 1, 4, 0, 0, 2, 5};
  const std::vector<double> b = {4, 9, 19};
  const auto x = dense_lower_solve(d, 3, b);
  EXPECT_DOUBLE_EQ(x[0], 2.0);
  EXPECT_DOUBLE_EQ(x[1], 1.75);
  EXPECT_DOUBLE_EQ(x[2], 3.1);
}

TEST(Dense, MatvecOracle) {
  const std::vector<double> d = {1, 2, 3, 4, 5, 6};  // 2x3
  const auto y = dense_matvec(d, 2, 3, {1.0, 0.0, -1.0});
  EXPECT_DOUBLE_EQ(y[0], -2.0);
  EXPECT_DOUBLE_EQ(y[1], -2.0);
}

TEST(Dense, SpyShape) {
  const auto s = spy(gen::diagonal(8, 1), 8);
  // 8 lines of 8 characters with a '*' diagonal.
  EXPECT_EQ(s.size(), 72u);
  EXPECT_EQ(s[0], '*');
  EXPECT_EQ(s[1], '.');
}

TEST(MmIo, WriteReadRoundTrip) {
  const auto a = gen::power_law(50, 2.2, 8, 3.0, 13);
  std::stringstream ss;
  write_matrix_market(ss, a);
  const auto back = coo_to_csr(read_matrix_market<double>(ss));
  EXPECT_TRUE(equals(a, back));
}

TEST(MmIo, SymmetricExpansion) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "% comment line\n"
      "3 3 3\n"
      "1 1 2.0\n"
      "2 1 5.0\n"
      "3 3 1.0\n");
  const auto a = coo_to_csr(read_matrix_market<double>(ss));
  EXPECT_EQ(a.nnz(), 4);  // off-diagonal mirrored, diagonals not duplicated
  const auto d = to_dense(a);
  EXPECT_DOUBLE_EQ(d[1], 5.0);
  EXPECT_DOUBLE_EQ(d[3], 5.0);
}

TEST(MmIo, SkewSymmetricExpansionNegatesMirror) {
  // Regression: the mirrored entry of a skew-symmetric file used to be
  // pushed with +v; a(j,i) must be -a(i,j).
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real skew-symmetric\n"
      "3 3 2\n"
      "2 1 5.0\n"
      "3 2 -4.0\n");
  const auto a = coo_to_csr(read_matrix_market<double>(ss));
  EXPECT_EQ(a.nnz(), 4);
  const auto d = to_dense(a);
  EXPECT_DOUBLE_EQ(d[1 * 3 + 0], 5.0);   // stored entry
  EXPECT_DOUBLE_EQ(d[0 * 3 + 1], -5.0);  // mirror negated
  EXPECT_DOUBLE_EQ(d[2 * 3 + 1], -4.0);
  EXPECT_DOUBLE_EQ(d[1 * 3 + 2], 4.0);
}

TEST(MmIo, ParseErrorsReportLineNumbers) {
  // Entry line 5 is malformed.
  std::stringstream bad_entry(
      "%%MatrixMarket matrix coordinate real general\n"
      "% comment\n"
      "2 2 2\n"
      "1 1 1.0\n"
      "2 x 1.0\n");
  Coo<double> out;
  Status st = try_read_matrix_market(bad_entry, &out);
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_EQ(st.location(), 5);
  EXPECT_NE(st.message().find("line 5"), std::string::npos);

  // Size line (line 3 after a comment) is malformed.
  std::stringstream bad_size(
      "%%MatrixMarket matrix coordinate real general\n"
      "% comment\n"
      "2 two 2\n");
  st = try_read_matrix_market(bad_size, &out);
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_EQ(st.location(), 3);
  EXPECT_NE(st.message().find("line 3"), std::string::npos);

  // Header failures pin line 1.
  std::stringstream bad_header("%%NotMatrixMarket whatever\n");
  st = try_read_matrix_market(bad_header, &out);
  EXPECT_EQ(st.code(), StatusCode::kBadFormat);
  EXPECT_EQ(st.location(), 1);

  // The throwing wrapper carries the same status.
  std::stringstream bad_entry2(
      "%%MatrixMarket matrix coordinate real general\n"
      "1 1 1\n"
      "1 1\n");
  try {
    read_matrix_market<double>(bad_entry2);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.status().code(), StatusCode::kParseError);
    EXPECT_EQ(e.status().location(), 3);
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(MmIo, PatternEntriesGetUnitValues) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 1\n"
      "2 2\n");
  const auto a = coo_to_csr(read_matrix_market<double>(ss));
  EXPECT_DOUBLE_EQ(a.val[0], 1.0);
  EXPECT_DOUBLE_EQ(a.val[1], 1.0);
}

TEST(MmIo, RejectsGarbage) {
  std::stringstream bad1("not a matrix market file\n");
  EXPECT_THROW(read_matrix_market<double>(bad1), Error);
  std::stringstream bad2(
      "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n");
  EXPECT_THROW(read_matrix_market<double>(bad2), Error);
  std::stringstream bad3(
      "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n");
  EXPECT_THROW(read_matrix_market<double>(bad3), Error);  // truncated
  std::stringstream bad4(
      "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n");
  EXPECT_THROW(read_matrix_market<double>(bad4), Error);  // out of bounds
}

TEST(MmIo, FileRoundTrip) {
  const auto a = gen::grid2d(7, 9, 17);
  const std::string path = ::testing::TempDir() + "/blocktri_io_test.mtx";
  write_matrix_market_file(path, a);
  const auto back = coo_to_csr(read_matrix_market_file<double>(path));
  EXPECT_TRUE(equals(a, back));
}

TEST(MmIo, MissingFileThrows) {
  EXPECT_THROW(read_matrix_market_file<double>("/nonexistent/file.mtx"),
               Error);
}

}  // namespace
}  // namespace blocktri
