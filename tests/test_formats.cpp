// Unit tests for sparse/formats: container invariants and validation.
#include <gtest/gtest.h>

#include "sparse/formats.hpp"

namespace blocktri {
namespace {

Csr<double> small_csr() {
  // [ 1 0 2 ]
  // [ 0 3 0 ]
  // [ 4 0 5 ]
  Csr<double> a;
  a.nrows = a.ncols = 3;
  a.row_ptr = {0, 2, 3, 5};
  a.col_idx = {0, 2, 1, 0, 2};
  a.val = {1, 2, 3, 4, 5};
  return a;
}

TEST(Formats, ValidCsrPasses) { EXPECT_NO_THROW(validate(small_csr())); }

TEST(Formats, CsrRowNnz) {
  const auto a = small_csr();
  EXPECT_EQ(a.nnz(), 5);
  EXPECT_EQ(a.row_nnz(0), 2);
  EXPECT_EQ(a.row_nnz(1), 1);
  EXPECT_EQ(a.row_nnz(2), 2);
}

TEST(Formats, CsrRejectsBadPtrSize) {
  auto a = small_csr();
  a.row_ptr.pop_back();
  EXPECT_THROW(validate(a), Error);
}

TEST(Formats, CsrRejectsNonMonotonePtr) {
  auto a = small_csr();
  a.row_ptr = {0, 3, 2, 5};
  EXPECT_THROW(validate(a), Error);
}

TEST(Formats, CsrRejectsPtrNnzMismatch) {
  auto a = small_csr();
  a.row_ptr.back() = 4;
  EXPECT_THROW(validate(a), Error);
}

TEST(Formats, CsrRejectsOutOfRangeColumn) {
  auto a = small_csr();
  a.col_idx[1] = 3;
  EXPECT_THROW(validate(a), Error);
}

TEST(Formats, CsrRejectsUnsortedRow) {
  auto a = small_csr();
  std::swap(a.col_idx[0], a.col_idx[1]);
  EXPECT_THROW(validate(a), Error);
}

TEST(Formats, CsrRejectsDuplicateColumn) {
  auto a = small_csr();
  a.col_idx[1] = 0;
  EXPECT_THROW(validate(a), Error);
}

TEST(Formats, ValidCscPasses) {
  Csc<double> a;
  a.nrows = a.ncols = 2;
  a.col_ptr = {0, 1, 2};
  a.row_idx = {0, 1};
  a.val = {1, 2};
  EXPECT_NO_THROW(validate(a));
}

TEST(Formats, CscRejectsUnsortedColumn) {
  Csc<double> a;
  a.nrows = a.ncols = 2;
  a.col_ptr = {0, 2, 2};
  a.row_idx = {1, 0};
  a.val = {1, 2};
  EXPECT_THROW(validate(a), Error);
}

TEST(Formats, ValidDcsrPasses) {
  Dcsr<double> a;
  a.nrows = 10;
  a.ncols = 4;
  a.row_ids = {3, 7};
  a.row_ptr = {0, 1, 3};
  a.col_idx = {1, 0, 2};
  a.val = {1, 2, 3};
  EXPECT_NO_THROW(validate(a));
  EXPECT_EQ(a.nnz_rows(), 2);
}

TEST(Formats, DcsrRejectsExplicitEmptyRow) {
  Dcsr<double> a;
  a.nrows = 10;
  a.ncols = 4;
  a.row_ids = {3, 7};
  a.row_ptr = {0, 0, 2};  // row 3 stored but empty
  a.col_idx = {0, 2};
  a.val = {2, 3};
  EXPECT_THROW(validate(a), Error);
}

TEST(Formats, DcsrRejectsUnsortedRowIds) {
  Dcsr<double> a;
  a.nrows = 10;
  a.ncols = 4;
  a.row_ids = {7, 3};
  a.row_ptr = {0, 1, 2};
  a.col_idx = {0, 2};
  a.val = {2, 3};
  EXPECT_THROW(validate(a), Error);
}

TEST(Formats, CooRejectsOutOfRange) {
  Coo<double> a;
  a.nrows = 2;
  a.ncols = 2;
  a.row = {0, 2};
  a.col = {0, 1};
  a.val = {1, 2};
  EXPECT_THROW(validate(a), Error);
}

TEST(Formats, EqualsDetectsValueDifference) {
  auto a = small_csr();
  auto b = small_csr();
  EXPECT_TRUE(equals(a, b));
  b.val[2] = 99;
  EXPECT_FALSE(equals(a, b));
}

TEST(Formats, EqualsDetectsStructureDifference) {
  auto a = small_csr();
  auto b = small_csr();
  b.col_idx[1] = 1;
  EXPECT_FALSE(equals(a, b));
}

TEST(Formats, EmptyMatrixIsValid) {
  Csr<double> a;
  a.nrows = 0;
  a.ncols = 0;
  a.row_ptr = {0};
  EXPECT_NO_THROW(validate(a));
  EXPECT_EQ(a.nnz(), 0);
}

TEST(Formats, FloatInstantiation) {
  Csr<float> a;
  a.nrows = 1;
  a.ncols = 1;
  a.row_ptr = {0, 1};
  a.col_idx = {0};
  a.val = {1.0f};
  EXPECT_NO_THROW(validate(a));
}

}  // namespace
}  // namespace blocktri
