// Resilience & session tests (ISSUE 6): leased workspaces and reentrant
// solves, cooperative deadlines/cancellation, bounded sync-free spins, the
// whole-solve degradation ladder, artifact-load retry, and plan-cache
// quarantine. Every fault here is injected deterministically — no test
// depends on "losing a race"; cross-thread tests synchronise on observable
// state (pool in_use counts, generous sleep margins) rather than timing
// luck. The concurrency tests are the ones the CI stress lane repeats under
// ThreadSanitizer.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "blocktri.hpp"
#include "helpers.hpp"

namespace blocktri {
namespace {

using blocktri::testing::VectorsNear;

using Opt = BlockSolver<double>::Options;

Csr<double> fixture() { return gen::grid2d(40, 25, 5); }  // n = 1000

Opt base_options(BlockScheme scheme = BlockScheme::kRecursive,
                 int threads = 1) {
  Opt opt;
  opt.scheme = scheme;
  opt.planner.stop_rows = 64;  // force real block structure on test sizes
  opt.planner.nseg = 4;
  opt.threads = threads;
  return opt;
}

std::unique_ptr<BlockSolver<double>> make_solver(const Opt& opt) {
  std::unique_ptr<BlockSolver<double>> s;
  Status st = BlockSolver<double>::create(fixture(), opt, &s);
  EXPECT_TRUE(st.ok()) << st.to_string();
  return s;
}

// Spins until the solver's workspace pool shows `want` leases in flight —
// the cross-thread synchronisation primitive of the pool tests: observable
// state instead of sleep-and-hope.
bool wait_for_in_use(const BlockSolver<double>& s, std::size_t want,
                     int timeout_ms = 2000) {
  const auto give_up = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(timeout_ms);
  while (s.workspace_stats().in_use < want) {
    if (std::chrono::steady_clock::now() >= give_up) return false;
    std::this_thread::yield();
  }
  return true;
}

// --- WorkspacePool unit tests ----------------------------------------------

TEST(WorkspacePool, LeasesAreDistinctAndRecycled) {
  WorkspacePool<std::vector<int>> pool({4, true});
  auto init = [](std::vector<int>& w) { w.assign(8, 0); };
  auto a = pool.acquire(init);
  auto b = pool.acquire(init);
  ASSERT_TRUE(a);
  ASSERT_TRUE(b);
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(a->size(), 8u);
  const auto* recycled = b.get();
  b.release();
  auto c = pool.acquire(init);  // LIFO: the just-released workspace comes back
  EXPECT_EQ(c.get(), recycled);

  const WorkspacePoolStats st = pool.stats();
  EXPECT_EQ(st.created, 2u);
  EXPECT_EQ(st.leases, 3u);
  EXPECT_EQ(st.in_use, 2u);
  EXPECT_EQ(st.exhausted, 0u);
}

TEST(WorkspacePool, FailingModeReturnsEmptyLeaseWhenExhausted) {
  WorkspacePool<int> pool({2, /*block_when_exhausted=*/false});
  auto init = [](int&) {};
  auto a = pool.acquire(init);
  auto b = pool.acquire(init);
  ASSERT_TRUE(a);
  ASSERT_TRUE(b);
  auto c = pool.acquire(init);
  EXPECT_FALSE(c);  // backpressure: typed failure, not a third workspace
  EXPECT_EQ(pool.stats().exhausted, 1u);
  EXPECT_EQ(pool.stats().created, 2u);
  b.release();
  auto d = pool.acquire(init);
  EXPECT_TRUE(d);
}

TEST(WorkspacePool, BlockingModeWaitsForARelease) {
  WorkspacePool<int> pool({1, /*block_when_exhausted=*/true});
  auto init = [](int&) {};
  auto held = pool.acquire(init);
  ASSERT_TRUE(held);

  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    auto late = pool.acquire(init);  // blocks until `held` is released
    acquired.store(late ? true : false);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(acquired.load());  // still parked on the exhausted pool
  held.release();
  waiter.join();
  EXPECT_TRUE(acquired.load());
  EXPECT_GE(pool.stats().lease_waits, 1u);
}

// --- Reentrancy: concurrent solves on one warm solver ----------------------

// The tentpole acceptance test: one warm serial-executor solver, hammered
// from 4 caller threads across every scheme and both RHS shapes, must
// produce bitwise the serial answer on every thread (each call leases its
// own workspace; nothing is shared). The CI stress lane runs this under
// ThreadSanitizer.
TEST(Reentrancy, ConcurrentSolvesBitwiseEqualSerial) {
  constexpr int kThreads = 4;
  constexpr index_t kPanel = 16;
  for (BlockScheme scheme :
       {BlockScheme::kColumn, BlockScheme::kRow, BlockScheme::kRecursive}) {
    auto solver = make_solver(base_options(scheme));
    const index_t n = fixture().nrows;
    const auto b = gen::random_rhs<double>(n, 7);
    std::vector<double> B;
    for (index_t c = 0; c < kPanel; ++c) {
      const auto col = gen::random_rhs<double>(n, 100 + static_cast<int>(c));
      B.insert(B.end(), col.begin(), col.end());
    }
    const std::vector<double> x_ref = solver->solve(b);        // k = 1
    const std::vector<double> X_ref = solver->solve_many(B, kPanel);

    std::vector<std::vector<double>> xs(kThreads);
    std::vector<std::vector<double>> Xs(kThreads);
    std::vector<Status> st1(kThreads, Status::Ok());
    std::vector<Status> stk(kThreads, Status::Ok());
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        xs[t].assign(static_cast<std::size_t>(n), 0.0);
        Xs[t].assign(B.size(), 0.0);
        st1[t] = solver->solve(b.data(), xs[t].data(), SolveControls{});
        stk[t] = solver->solve_many(B.data(), Xs[t].data(), kPanel,
                                    SolveControls{});
      });
    }
    for (auto& w : workers) w.join();
    for (int t = 0; t < kThreads; ++t) {
      ASSERT_TRUE(st1[t].ok()) << st1[t].to_string();
      ASSERT_TRUE(stk[t].ok()) << stk[t].to_string();
      EXPECT_EQ(xs[t], x_ref) << "scheme " << to_string(scheme) << " thread "
                              << t;
      EXPECT_EQ(Xs[t], X_ref) << "scheme " << to_string(scheme) << " thread "
                              << t;
    }
    const WorkspacePoolStats ps = solver->workspace_stats();
    EXPECT_EQ(ps.in_use, 0u);  // every lease returned
    EXPECT_GE(ps.leases, static_cast<std::uint64_t>(2 * kThreads + 2));
  }
}

// With a parallel executor the in-flight solves arbitrate for the fork-join
// pool: one wins it, the rest degrade to the serial executor (identical
// arithmetic on a private workspace), so every call still verifies.
TEST(Reentrancy, ConcurrentCheckedSolvesWithExecutorPool) {
  constexpr int kThreads = 4;
  auto solver = make_solver(base_options(BlockScheme::kRecursive, 2));
  const auto b = gen::random_rhs<double>(fixture().nrows, 11);

  std::vector<SolveResult<double>> results(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&, t] { results[t] = solver->solve_checked(b); });
  for (auto& w : workers) w.join();

  const std::vector<double> x_ref = solver->solve(b);
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_TRUE(results[t].ok()) << results[t].status.to_string();
    EXPECT_TRUE(results[t].report.residual_checked);
    for (const DegradeEvent& d : results[t].report.degrades) {
      EXPECT_EQ(d.kind, DegradeEvent::Kind::kParallelToSerial);
      EXPECT_EQ(d.reason, StatusCode::kReentrantSolve);
    }
    EXPECT_TRUE(VectorsNear(results[t].x, x_ref,
                            blocktri::testing::default_tol<double>()));
  }
}

TEST(Reentrancy, StrictModeRejectsOverlappingSolves) {
  Opt opt = base_options();
  opt.session.strict_reentrancy = true;
  opt.fault.hold_lease_ms = 150;  // stretch the first solve's occupancy
  auto solver = make_solver(opt);
  const auto b = gen::random_rhs<double>(fixture().nrows, 3);

  Status first = Status::Ok();
  std::thread holder([&] {
    std::vector<double> x(b.size());
    first = solver->solve(b.data(), x.data(), SolveControls{});
  });
  ASSERT_TRUE(wait_for_in_use(*solver, 1));
  std::vector<double> x(b.size());
  const Status second = solver->solve(b.data(), x.data(), SolveControls{});
  holder.join();
  EXPECT_TRUE(first.ok()) << first.to_string();
  EXPECT_EQ(second.code(), StatusCode::kReentrantSolve);
}

// --- Pool exhaustion backpressure ------------------------------------------

TEST(PoolBackpressure, FailingModeSurfacesPoolExhausted) {
  Opt opt = base_options();
  opt.session.max_workspaces = 1;
  opt.session.block_when_exhausted = false;
  opt.fault.hold_lease_ms = 150;
  auto solver = make_solver(opt);
  const auto b = gen::random_rhs<double>(fixture().nrows, 3);

  Status first = Status::Ok();
  std::thread holder([&] {
    std::vector<double> x(b.size());
    first = solver->solve(b.data(), x.data(), SolveControls{});
  });
  ASSERT_TRUE(wait_for_in_use(*solver, 1));  // the lone workspace is leased
  std::vector<double> x(b.size());
  const Status second = solver->solve(b.data(), x.data(), SolveControls{});
  holder.join();
  EXPECT_TRUE(first.ok()) << first.to_string();
  EXPECT_EQ(second.code(), StatusCode::kPoolExhausted);
  EXPECT_GE(solver->workspace_stats().exhausted, 1u);
}

TEST(PoolBackpressure, BlockingModeWaitsAndBothSolvesSucceed) {
  Opt opt = base_options();
  opt.session.max_workspaces = 1;
  opt.session.block_when_exhausted = true;
  opt.fault.hold_lease_ms = 100;
  auto solver = make_solver(opt);
  const auto b = gen::random_rhs<double>(fixture().nrows, 3);
  const std::vector<double> x_ref = [&] {
    Opt clean = base_options();
    return make_solver(clean)->solve(b);
  }();

  Status first = Status::Ok();
  std::thread holder([&] {
    std::vector<double> x(b.size());
    first = solver->solve(b.data(), x.data(), SolveControls{});
  });
  ASSERT_TRUE(wait_for_in_use(*solver, 1));
  std::vector<double> x(b.size());
  const Status second = solver->solve(b.data(), x.data(), SolveControls{});
  holder.join();
  EXPECT_TRUE(first.ok()) << first.to_string();
  EXPECT_TRUE(second.ok()) << second.to_string();
  EXPECT_EQ(x, x_ref);
  EXPECT_GE(solver->workspace_stats().lease_waits, 1u);
}

// --- Deadlines and cancellation --------------------------------------------

TEST(Deadlines, ExpiredDeadlineTripsBeforeAnyStep) {
  auto solver = make_solver(base_options());
  const auto b = gen::random_rhs<double>(fixture().nrows, 3);
  SolveControls controls;
  controls.deadline = Deadline::after_ms(0);  // already expired
  std::vector<double> x(b.size(), -1.0);
  SolveReport rep;
  const Status st = solver->solve(b.data(), x.data(), controls, &rep);
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(rep.steps_completed, 0);
  EXPECT_GT(rep.steps_total, 0);
}

TEST(Deadlines, DeadlineExpiringMidSolveUnwindsCooperatively) {
  Opt opt = base_options();
  opt.fault.hold_lease_ms = 120;  // the deadline lapses while we hold the lease
  auto solver = make_solver(opt);
  const auto b = gen::random_rhs<double>(fixture().nrows, 3);
  SolveControls controls;
  controls.deadline = Deadline::after_ms(20);
  std::vector<double> x(b.size());
  SolveReport rep;
  const Status st = solver->solve(b.data(), x.data(), controls, &rep);
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(rep.steps_completed, rep.steps_total);
}

TEST(Deadlines, CheckedSolveTreatsDeadlineAsTerminal) {
  auto solver = make_solver(base_options(BlockScheme::kRecursive, 2));
  const auto b = gen::random_rhs<double>(fixture().nrows, 3);
  SolveControls controls;
  controls.deadline = Deadline::after_ms(0);
  const SolveResult<double> res = solver->solve_checked(b, controls);
  EXPECT_EQ(res.status.code(), StatusCode::kDeadlineExceeded);
  // Terminal: the ladder must NOT burn retry rungs on an expired caller.
  EXPECT_EQ(res.report.attempts, 1);
}

TEST(Deadlines, BatchedSolvesHonourDeadlines) {
  auto solver = make_solver(base_options());
  const index_t n = fixture().nrows;
  constexpr index_t k = 4;
  std::vector<double> B;
  for (index_t c = 0; c < k; ++c) {
    const auto col = gen::random_rhs<double>(n, 40 + static_cast<int>(c));
    B.insert(B.end(), col.begin(), col.end());
  }
  SolveControls controls;
  controls.deadline = Deadline::after_ms(0);
  std::vector<double> X(B.size());
  EXPECT_EQ(solver->solve_many(B.data(), X.data(), k, controls).code(),
            StatusCode::kDeadlineExceeded);
  const SolveManyResult<double> res = solver->solve_many_checked(B, k,
                                                                 controls);
  EXPECT_EQ(res.status.code(), StatusCode::kDeadlineExceeded);
}

TEST(Cancellation, PreCancelledTokenShortCircuits) {
  auto solver = make_solver(base_options());
  const auto b = gen::random_rhs<double>(fixture().nrows, 3);
  CancelToken token;
  token.cancel();
  SolveControls controls;
  controls.cancel = &token;
  std::vector<double> x(b.size());
  SolveReport rep;
  EXPECT_EQ(solver->solve(b.data(), x.data(), controls, &rep).code(),
            StatusCode::kCancelled);
  EXPECT_EQ(rep.steps_completed, 0);

  token.reset();  // the token is reusable
  EXPECT_TRUE(solver->solve(b.data(), x.data(), controls, &rep).ok());
}

TEST(Cancellation, CancelFromAnotherThreadStopsTheSolve) {
  Opt opt = base_options();
  opt.fault.hold_lease_ms = 150;  // window for the other thread's cancel
  auto solver = make_solver(opt);
  const auto b = gen::random_rhs<double>(fixture().nrows, 3);
  CancelToken token;
  SolveControls controls;
  controls.cancel = &token;

  Status st = Status::Ok();
  std::thread worker([&] {
    std::vector<double> x(b.size());
    st = solver->solve(b.data(), x.data(), controls);
  });
  ASSERT_TRUE(wait_for_in_use(*solver, 1));
  token.cancel();  // fires while the solve is in flight
  worker.join();
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
}

// --- Bounded sync-free spins -----------------------------------------------

// A poisoned in-degree counter makes the parallel sync-free busy-wait
// undrainable. With a control attached the bounded spin trips kSpinTimeout
// — a typed error where the pre-session kernel livelocked forever.
TEST(SpinTimeout, UncheckedSolveSurfacesTypedStatusInsteadOfLivelock) {
  Opt opt = base_options(BlockScheme::kColumn, 2);
  opt.adaptive = false;
  opt.forced_tri = TriKernelKind::kSyncFree;
  opt.fault.stuck_spin = true;
  opt.fault.tri_block = 2;  // third diagonal block: progress happens first
  auto solver = make_solver(opt);
  const auto b = gen::random_rhs<double>(fixture().nrows, 3);
  SolveControls controls;
  controls.spin_timeout_ms = 50.0;
  std::vector<double> x(b.size());
  SolveReport rep;
  const auto t0 = std::chrono::steady_clock::now();
  const Status st = solver->solve(b.data(), x.data(), controls, &rep);
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  EXPECT_EQ(st.code(), StatusCode::kSpinTimeout);
  EXPECT_GT(rep.steps_completed, 0);  // the blocks before the stuck one ran
  EXPECT_LT(rep.steps_completed, rep.steps_total);
  EXPECT_LT(ms, 5000.0);  // bounded: nowhere near a livelock
}

// The checked ladder absorbs the same fault: the spin trip is consumed and
// the block re-solved on a spin-free rung (level-set / serial never touch
// the in-degree counters), so the caller sees a verified solve plus a
// recorded per-block fallback.
TEST(SpinTimeout, CheckedLadderHealsAStuckSpin) {
  Opt opt = base_options(BlockScheme::kColumn, 2);
  opt.adaptive = false;
  opt.forced_tri = TriKernelKind::kSyncFree;
  opt.fault.stuck_spin = true;
  opt.fault.tri_block = 0;
  auto solver = make_solver(opt);
  const auto b = gen::random_rhs<double>(fixture().nrows, 3);
  SolveControls controls;
  controls.spin_timeout_ms = 50.0;
  const SolveResult<double> res = solver->solve_checked(b, controls);
  ASSERT_TRUE(res.ok()) << res.status.to_string();
  EXPECT_TRUE(res.report.residual_checked);
  EXPECT_GE(res.report.fallbacks.size(), 1u);  // block 0 degraded and healed
}

// The serial and batched sync-free paths never consult the in-degree
// counters, so a poisoned solver still produces exact answers on every
// spin-free rung — the property the self-healing direct-call path relies on.
TEST(SpinTimeout, SpinFreePathsIgnorePoisonedCounters) {
  const Csr<double> L = gen::banded(400, 8, 2.0, 21);
  SyncFreeSolver<double> clean(L);
  SyncFreeSolver<double> poisoned(L);
  poisoned.poison_in_degree_for_testing(0, 5);
  const auto b = gen::random_rhs<double>(L.nrows, 9);
  std::vector<double> x_ref(b.size()), x(b.size());
  clean.solve(b.data(), x_ref.data());
  poisoned.solve(b.data(), x.data());  // no pool: serial, counter-free
  EXPECT_EQ(x, x_ref);
}

// --- Whole-solve degradation ladder ----------------------------------------

TEST(DegradationLadder, ResidualRejectionRetriesOnSerialRung) {
  Opt opt = base_options(BlockScheme::kRecursive, 4);
  opt.verify.max_refinements = 0;  // rejection must engage the ladder
  opt.fault.corrupt_solve_attempts = 1;
  auto solver = make_solver(opt);
  const auto b = gen::random_rhs<double>(fixture().nrows, 3);
  const SolveResult<double> res = solver->solve_checked(b);
  ASSERT_TRUE(res.ok()) << res.status.to_string();
  EXPECT_EQ(res.report.attempts, 2);  // attempt 1 poisoned, attempt 2 clean
  ASSERT_EQ(res.report.degrades.size(), 1u);
  EXPECT_EQ(res.report.degrades[0].kind,
            DegradeEvent::Kind::kParallelToSerial);
  EXPECT_EQ(res.report.degrades[0].reason, StatusCode::kResidualTooLarge);
}

TEST(DegradationLadder, ExhaustedLadderReportsEveryRungTried) {
  Opt opt = base_options(BlockScheme::kRecursive, 4);
  opt.verify.max_refinements = 0;
  opt.fault.corrupt_solve_attempts = 100;  // every rung re-poisoned
  auto solver = make_solver(opt);
  const auto b = gen::random_rhs<double>(fixture().nrows, 3);
  const SolveResult<double> res = solver->solve_checked(b);
  EXPECT_EQ(res.status.code(), StatusCode::kResidualTooLarge);
  EXPECT_GE(res.report.attempts, 2);  // pool rung + at least the serial rung
  EXPECT_EQ(res.report.degrades.size(),
            static_cast<std::size_t>(res.report.attempts) - 1);
}

TEST(DegradationLadder, LadderIsOffWhenFallbackDisabled) {
  Opt opt = base_options(BlockScheme::kRecursive, 4);
  opt.verify.fallback = false;
  opt.verify.max_refinements = 0;
  opt.fault.corrupt_solve_attempts = 1;
  auto solver = make_solver(opt);
  const auto b = gen::random_rhs<double>(fixture().nrows, 3);
  const SolveResult<double> res = solver->solve_checked(b);
  EXPECT_EQ(res.status.code(), StatusCode::kResidualTooLarge);
  EXPECT_EQ(res.report.attempts, 1);
  EXPECT_TRUE(res.report.degrades.empty());
}

TEST(DegradationLadder, PanelRetriesAsAWholeAndOtherColumnsStayClean) {
  Opt opt = base_options(BlockScheme::kRecursive, 4);
  opt.verify.max_refinements = 0;
  opt.fault.corrupt_solve_attempts = 1;
  opt.fault.column = 2;  // only this panel column is poisoned
  auto solver = make_solver(opt);
  const index_t n = fixture().nrows;
  constexpr index_t k = 4;
  std::vector<double> B;
  for (index_t c = 0; c < k; ++c) {
    const auto col = gen::random_rhs<double>(n, 60 + static_cast<int>(c));
    B.insert(B.end(), col.begin(), col.end());
  }
  const SolveManyResult<double> res = solver->solve_many_checked(B, k);
  ASSERT_TRUE(res.ok()) << res.status.to_string();
  for (index_t c = 0; c < k; ++c) {
    const SolveReport& rep = res.reports[static_cast<std::size_t>(c)];
    EXPECT_EQ(rep.attempts, 2) << "column " << c;  // panel-level retry
    ASSERT_EQ(rep.degrades.size(), 1u) << "column " << c;
    EXPECT_EQ(rep.degrades[0].reason, StatusCode::kResidualTooLarge);
    EXPECT_TRUE(rep.residual_checked);
    EXPECT_LE(rep.residual, rep.tolerance);
  }
}

// --- Artifact-load retry ----------------------------------------------------

class ArtifactRetry : public ::testing::Test {
 protected:
  void TearDown() override {
    persist_testing::force_io_failures(0);  // never leak into other tests
    std::remove(path_.c_str());
  }
  std::string path_ =
      ::testing::TempDir() + "blocktri_resilience_retry.btpa";
};

TEST_F(ArtifactRetry, TransientIoFailuresAreRetriedWithBackoff) {
  const Csr<double> L = fixture();
  Opt opt = base_options();
  opt.session.artifact_retry_attempts = 3;
  opt.session.artifact_retry_backoff_ms = 0.01;  // keep the test fast
  std::unique_ptr<BlockSolver<double>> cold;
  ASSERT_TRUE(BlockSolver<double>::create(L, opt, &cold).ok());
  ASSERT_TRUE(cold->save_artifact(path_).ok());

  PlanCache<double> cache;
  persist_testing::force_io_failures(2);  // attempts 1 and 2 fail, 3 lands
  std::unique_ptr<BlockSolver<double>> warm;
  const Status st =
      BlockSolver<double>::create_from_file(path_, L, opt, &warm, &cache);
  ASSERT_TRUE(st.ok()) << st.to_string();
  EXPECT_EQ(persist_testing::pending_io_failures(), 0);
  EXPECT_EQ(cache.stats().retry_successes, 1u);
  EXPECT_GE(cache.stats().inserts, 1u);  // the loaded plan was cached

  const auto b = gen::random_rhs<double>(L.nrows, 5);
  EXPECT_EQ(warm->solve(b), cold->solve(b));  // bitwise, as ever
}

TEST_F(ArtifactRetry, PersistentIoFailureSurfacesAfterBoundedAttempts) {
  const Csr<double> L = fixture();
  Opt opt = base_options();
  opt.session.artifact_retry_attempts = 3;
  opt.session.artifact_retry_backoff_ms = 0.01;
  std::unique_ptr<BlockSolver<double>> cold;
  ASSERT_TRUE(BlockSolver<double>::create(L, opt, &cold).ok());
  ASSERT_TRUE(cold->save_artifact(path_).ok());

  persist_testing::force_io_failures(10);  // outlasts the retry budget
  std::unique_ptr<BlockSolver<double>> warm;
  const Status st =
      BlockSolver<double>::create_from_file(path_, L, opt, &warm);
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  // Exactly `attempts` loads were consumed — bounded, no retry storm.
  EXPECT_EQ(persist_testing::pending_io_failures(), 7);
}

TEST_F(ArtifactRetry, PermanentErrorsAreNotRetried) {
  const Csr<double> L = fixture();
  Opt opt = base_options();
  opt.session.artifact_retry_attempts = 5;
  std::unique_ptr<BlockSolver<double>> warm;
  // Missing file: a permanent kBadFormat, returned without burning retries.
  const Status st = BlockSolver<double>::create_from_file(
      ::testing::TempDir() + "blocktri_no_such_artifact.btpa", L, opt, &warm);
  EXPECT_EQ(st.code(), StatusCode::kBadFormat);
}

// --- Plan-cache quarantine --------------------------------------------------

std::shared_ptr<const PlanArtifact<double>> artifact_for(
    const Csr<double>& L) {
  std::unique_ptr<BlockSolver<double>> s;
  EXPECT_TRUE(BlockSolver<double>::create(L, base_options(), &s).ok());
  return std::make_shared<PlanArtifact<double>>(s->capture_artifact());
}

TEST(PlanCacheQuarantine, RepeatedHitFailuresTombstoneTheKey) {
  typename PlanCache<double>::Limits lim;
  lim.quarantine_failures = 3;
  lim.quarantine_ttl_inserts = 2;
  PlanCache<double> cache(lim);

  auto art = artifact_for(gen::banded(200, 4, 2.0, 1));
  const PlanCacheKey key{art->structure, art->options};
  cache.insert(art);
  ASSERT_NE(cache.find(key), nullptr);

  cache.report_hit_failure(key);
  cache.report_hit_failure(key);
  EXPECT_FALSE(cache.quarantined(key));  // below the threshold
  cache.report_hit_failure(key);
  EXPECT_TRUE(cache.quarantined(key));

  const PlanCacheStats st = cache.stats();
  EXPECT_EQ(st.quarantined, 1u);
  EXPECT_EQ(st.tombstones, 1u);
  EXPECT_EQ(st.entries, 0u);  // the bad entry was evicted with the tombstone

  EXPECT_EQ(cache.find(key), nullptr);        // tombstoned keys miss
  EXPECT_EQ(cache.insert(art), art);          // ...and are not re-admitted
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(PlanCacheQuarantine, TombstonesExpireAfterTtlInserts) {
  typename PlanCache<double>::Limits lim;
  lim.quarantine_failures = 1;
  lim.quarantine_ttl_inserts = 2;
  PlanCache<double> cache(lim);

  auto bad = artifact_for(gen::banded(200, 4, 2.0, 1));
  const PlanCacheKey key{bad->structure, bad->options};
  cache.insert(bad);
  cache.report_hit_failure(key);
  ASSERT_TRUE(cache.quarantined(key));

  // Two successful inserts of other keys age the tombstone out.
  cache.insert(artifact_for(gen::banded(220, 4, 2.0, 2)));
  EXPECT_TRUE(cache.quarantined(key));  // one generation: still serving time
  cache.insert(artifact_for(gen::banded(240, 4, 2.0, 3)));
  EXPECT_FALSE(cache.quarantined(key));
  EXPECT_EQ(cache.stats().tombstones, 0u);

  // After expiry the key is cacheable again.
  EXPECT_EQ(cache.insert(bad), bad);
  EXPECT_NE(cache.find(key), nullptr);
}

TEST(PlanCacheQuarantine, HitSuccessResetsTheConsecutiveFailureCount) {
  typename PlanCache<double>::Limits lim;
  lim.quarantine_failures = 2;
  PlanCache<double> cache(lim);
  auto art = artifact_for(gen::banded(200, 4, 2.0, 1));
  const PlanCacheKey key{art->structure, art->options};
  cache.insert(art);

  cache.report_hit_failure(key);
  cache.report_hit_success(key);  // quarantine counts *consecutive* failures
  cache.report_hit_failure(key);
  EXPECT_FALSE(cache.quarantined(key));
  cache.report_hit_failure(key);
  EXPECT_TRUE(cache.quarantined(key));
}

TEST(PlanCacheQuarantine, ResilienceCountersFlowIntoStats) {
  PlanCache<double> cache;
  cache.note_retry_success();
  cache.note_retry_success();
  cache.note_lease_waits(3);
  const PlanCacheStats st = cache.stats();
  EXPECT_EQ(st.retry_successes, 2u);
  EXPECT_EQ(st.lease_waits, 3u);
}

// --- Control-plane unit tests ----------------------------------------------

TEST(ExecControlUnit, FirstTripWinsAndSpinTripsAreConsumable) {
  ExecControl ctl;
  EXPECT_TRUE(ctl.check());
  EXPECT_FALSE(ctl.armed());  // nothing attached: the fast path
  ctl.trip(StatusCode::kSpinTimeout);
  ctl.trip(StatusCode::kCancelled);  // ignored: first failure wins
  EXPECT_EQ(ctl.reason(), StatusCode::kSpinTimeout);
  EXPECT_TRUE(ctl.consume_spin_trip());  // the ladder may retry spin-free
  EXPECT_FALSE(ctl.tripped());

  ctl.trip(StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(ctl.consume_spin_trip());  // deadline trips are terminal
  EXPECT_TRUE(ctl.tripped());
  EXPECT_EQ(ctl.to_status("here").code(), StatusCode::kDeadlineExceeded);
}

TEST(ExecControlUnit, DeadlineAndCancelArmTheControl) {
  SolveControls c;
  EXPECT_FALSE(ExecControl(c).armed());
  c.deadline = Deadline::after_ms(60000);
  EXPECT_TRUE(ExecControl(c).armed());
  EXPECT_TRUE(ExecControl(c).check());  // a distant deadline does not trip

  CancelToken token;
  SolveControls c2;
  c2.cancel = &token;
  const ExecControl ctl(c2);
  EXPECT_TRUE(ctl.armed());
  EXPECT_TRUE(ctl.check());
  token.cancel();
  EXPECT_FALSE(ctl.check());
  EXPECT_EQ(ctl.reason(), StatusCode::kCancelled);
}

// --- Latent-bug sweep (ISSUE 8): edges the service front end stresses -------

// A zero or negative budget must be expired the instant it is armed — the
// service admission path relies on this to reject dead requests before they
// touch the solver — and a huge negative value must not wrap the integer
// duration_cast into the far future.
TEST(DeadlineEdges, NonPositiveAndNaNBudgetsAreBornExpired) {
  EXPECT_TRUE(Deadline::after_ms(0.0).expired());
  EXPECT_TRUE(Deadline::after_ms(-1.0).expired());
  EXPECT_TRUE(Deadline::after_ms(-1e300).expired());
  EXPECT_TRUE(Deadline::after_ms(std::nan("")).expired());
  EXPECT_TRUE(
      Deadline::after_ms(-std::numeric_limits<double>::infinity()).expired());
  EXPECT_FALSE(Deadline::after_ms(0.0).unlimited_deadline());  // armed
}

// A budget beyond the clock's range used to overflow duration_cast and land
// in the past (instantly expired); it must instead pin at time_point::max().
TEST(DeadlineEdges, OversizeBudgetsPinAtClockMaxInsteadOfOverflowing) {
  const Deadline huge = Deadline::after_ms(1e300);
  EXPECT_FALSE(huge.unlimited_deadline());
  EXPECT_FALSE(huge.expired());
  EXPECT_EQ(huge.time_point(), Deadline::Clock::time_point::max());

  const Deadline inf =
      Deadline::after_ms(std::numeric_limits<double>::infinity());
  EXPECT_FALSE(inf.expired());
  EXPECT_EQ(inf.time_point(), Deadline::Clock::time_point::max());

  EXPECT_FALSE(Deadline::after_ms(5.0).expired());  // sane budgets still work
}

// The waiter-vs-cancellation race: a thread parked on an exhausted blocking
// pool must wake with a typed denial when its request is cancelled — before
// this sweep it slept until a workspace came back, potentially forever.
TEST(WorkspacePool, BlockedWaiterWakesWithCancelledWhenTokenFires) {
  WorkspacePool<int> pool({1, /*block_when_exhausted=*/true});
  auto init = [](int&) {};
  auto held = pool.acquire(init);
  ASSERT_TRUE(held);

  CancelToken token;
  StatusCode denial = StatusCode::kOk;
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    auto late = pool.acquire(init, Deadline::unlimited(), &token, &denial);
    EXPECT_FALSE(late);  // cancelled, not served
    woke.store(true);
  });
  // The waiter is parked (lease_waits ticks once it blocks).
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (pool.stats().lease_waits < 1 &&
         std::chrono::steady_clock::now() < give_up)
    std::this_thread::yield();
  ASSERT_GE(pool.stats().lease_waits, 1u);
  EXPECT_FALSE(woke.load());

  token.cancel();  // no workspace is ever released
  waiter.join();
  EXPECT_EQ(denial, StatusCode::kCancelled);
  EXPECT_EQ(pool.stats().in_use, 1u);  // the held lease is untouched
}

TEST(WorkspacePool, BlockedWaiterWakesWithDeadlineExceeded) {
  WorkspacePool<int> pool({1, /*block_when_exhausted=*/true});
  auto init = [](int&) {};
  auto held = pool.acquire(init);
  ASSERT_TRUE(held);

  StatusCode denial = StatusCode::kOk;
  auto late = pool.acquire(init, Deadline::after_ms(20.0), nullptr, &denial);
  EXPECT_FALSE(late);
  EXPECT_EQ(denial, StatusCode::kDeadlineExceeded);
}

TEST(WorkspacePool, CancellableAcquireStillServesWhenAWorkspaceReturns) {
  WorkspacePool<int> pool({1, /*block_when_exhausted=*/true});
  auto init = [](int&) {};
  auto held = pool.acquire(init);
  ASSERT_TRUE(held);

  CancelToken token;  // armed but never fired
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    StatusCode denial = StatusCode::kOk;
    auto late =
        pool.acquire(init, Deadline::after_ms(60000.0), &token, &denial);
    acquired.store(static_cast<bool>(late));
  });
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (pool.stats().lease_waits < 1 &&
         std::chrono::steady_clock::now() < give_up)
    std::this_thread::yield();
  held.release();
  waiter.join();
  EXPECT_TRUE(acquired.load());
}

// End to end through the solver: a solve blocked waiting for a workspace is
// unblocked by its own cancel token with a typed kCancelled.
TEST(PoolBackpressure, CancelWakesASolveBlockedOnTheExhaustedPool) {
  Opt opt = base_options();
  opt.session.max_workspaces = 1;
  opt.session.block_when_exhausted = true;
  opt.fault.hold_lease_ms = 400;  // the holder camps on the lone workspace
  auto solver = make_solver(opt);
  const auto b = gen::random_rhs<double>(fixture().nrows, 3);

  Status first = Status::Ok();
  std::thread holder([&] {
    std::vector<double> x(b.size());
    first = solver->solve(b.data(), x.data(), SolveControls{});
  });
  ASSERT_TRUE(wait_for_in_use(*solver, 1));

  CancelToken token;
  SolveControls controls;
  controls.cancel = &token;
  Status second = Status::Ok();
  std::thread blocked([&] {
    std::vector<double> x(b.size());
    second = solver->solve(b.data(), x.data(), controls);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  token.cancel();
  blocked.join();  // wakes on the poll tick, long before the holder releases
  holder.join();
  EXPECT_TRUE(first.ok()) << first.to_string();
  EXPECT_EQ(second.code(), StatusCode::kCancelled) << second.to_string();
}

// quarantine_ttl_inserts = 0 documents "expires at the first check after
// insert"; the boundary arithmetic must not make it permanent.
TEST(PlanCacheQuarantine, ZeroTtlTombstoneExpiresImmediately) {
  typename PlanCache<double>::Limits lim;
  lim.quarantine_failures = 1;
  lim.quarantine_ttl_inserts = 0;
  PlanCache<double> cache(lim);

  auto bad = artifact_for(gen::banded(200, 4, 2.0, 1));
  const PlanCacheKey key{bad->structure, bad->options};
  cache.insert(bad);
  cache.report_hit_failure(key);
  EXPECT_FALSE(cache.quarantined(key));  // expiry generation == now
  EXPECT_EQ(cache.insert(bad), bad);     // re-admitted right away
}

// quarantine_ttl_inserts = UINT64_MAX means "forever". Before the sweep,
// insert_generation + ttl wrapped modulo 2^64 to insert_generation − 1: the
// tombstone expired instantly and the quarantine silently never engaged.
TEST(PlanCacheQuarantine, MaxTtlTombstoneSaturatesInsteadOfWrapping) {
  typename PlanCache<double>::Limits lim;
  lim.quarantine_failures = 1;
  lim.quarantine_ttl_inserts = std::numeric_limits<std::uint64_t>::max();
  PlanCache<double> cache(lim);

  auto bad = artifact_for(gen::banded(200, 4, 2.0, 1));
  const PlanCacheKey key{bad->structure, bad->options};
  cache.insert(bad);
  cache.report_hit_failure(key);
  ASSERT_TRUE(cache.quarantined(key));

  // Generations advance; a wrapped expiry would have lapsed at the first.
  cache.insert(artifact_for(gen::banded(220, 4, 2.0, 2)));
  cache.insert(artifact_for(gen::banded(240, 4, 2.0, 3)));
  EXPECT_TRUE(cache.quarantined(key));
  EXPECT_EQ(cache.find(key), nullptr);
  EXPECT_EQ(cache.stats().tombstones, 1u);
}

}  // namespace
}  // namespace blocktri
