// Zero-allocation regression test for the warm solve hot path: after one
// warm-up call per shape, BlockSolver's raw-pointer solve()/solve_many()
// must not touch the heap. Enforced by replacing the global allocation
// functions with counting versions — any operator new between arm() and
// disarm() is recorded, and the warm-path tests assert the count stays zero.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/solver.hpp"
#include "gen/generators.hpp"
#include "helpers.hpp"

namespace {

std::atomic<bool> g_armed{false};
std::atomic<std::uint64_t> g_news{0};

void* counted_alloc(std::size_t sz) {
  if (g_armed.load(std::memory_order_relaxed))
    g_news.fetch_add(1, std::memory_order_relaxed);
  if (sz == 0) sz = 1;
  if (void* p = std::malloc(sz)) return p;
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t sz) { return counted_alloc(sz); }
void* operator new[](std::size_t sz) { return counted_alloc(sz); }
void* operator new(std::size_t sz, const std::nothrow_t&) noexcept {
  if (g_armed.load(std::memory_order_relaxed))
    g_news.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(sz == 0 ? 1 : sz);
}
void* operator new[](std::size_t sz, const std::nothrow_t&) noexcept {
  if (g_armed.load(std::memory_order_relaxed))
    g_news.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(sz == 0 ? 1 : sz);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace blocktri {
namespace {

using blocktri::testing::test_matrices;

/// Counts operator-new calls made by `fn`.
template <class Fn>
std::uint64_t allocations_in(Fn&& fn) {
  g_news.store(0, std::memory_order_relaxed);
  g_armed.store(true, std::memory_order_release);
  fn();
  g_armed.store(false, std::memory_order_release);
  return g_news.load(std::memory_order_relaxed);
}

class WarmSolveAlloc : public ::testing::Test {
 protected:
  void SetUp() override {
    // The zero-allocation guarantee is scoped to serial execution; the
    // fork-join pool's task dispatch may allocate. BLOCKTRI_THREADS can
    // override Options::threads from outside, so honour it.
    if (resolve_threads(1) != 1)
      GTEST_SKIP() << "warm-path allocation guarantee is threads=1 only";
  }
};

TEST_F(WarmSolveAlloc, SolveIsAllocationFreeWhenWarm) {
  for (const auto& tm : test_matrices()) {
    SCOPED_TRACE(tm.name);
    const auto L = tm.build();
    BlockSolver<double>::Options o;
    o.planner.stop_rows = 200;
    const BlockSolver<double> solver(L, o);
    const auto b = gen::random_rhs<double>(L.nrows, 7);
    std::vector<double> x(b.size());

    solver.solve(b.data(), x.data());  // warm-up sizes the workspace
    const std::uint64_t news =
        allocations_in([&] { solver.solve(b.data(), x.data()); });
    EXPECT_EQ(news, 0u);
  }
}

TEST_F(WarmSolveAlloc, SolveManyIsAllocationFreeWhenWarm) {
  for (const auto& tm : test_matrices()) {
    SCOPED_TRACE(tm.name);
    const auto L = tm.build();
    BlockSolver<double>::Options o;
    o.planner.stop_rows = 200;
    const BlockSolver<double> solver(L, o);
    const index_t k = 11;  // crosses a kRhsTile boundary with a tail
    std::vector<double> B, X;
    for (index_t c = 0; c < k; ++c) {
      const auto bc = gen::random_rhs<double>(L.nrows, 30 + static_cast<int>(c));
      B.insert(B.end(), bc.begin(), bc.end());
    }
    X.resize(B.size());

    solver.solve_many(B.data(), X.data(), k);  // warm-up
    const std::uint64_t news =
        allocations_in([&] { solver.solve_many(B.data(), X.data(), k); });
    EXPECT_EQ(news, 0u);
  }
}

TEST_F(WarmSolveAlloc, AlternatingShapesStayAllocationFree) {
  // The workspace is shared between the single and panel paths; once both
  // shapes have been seen, alternating between them must stay heap-free.
  const auto L = gen::random_levels(1500, 24, 3.0, 1.0, 8);
  BlockSolver<double>::Options o;
  o.planner.stop_rows = 200;
  const BlockSolver<double> solver(L, o);
  const auto b = gen::random_rhs<double>(L.nrows, 7);
  const index_t k = 4;
  std::vector<double> B, X(static_cast<std::size_t>(L.nrows) * k);
  for (index_t c = 0; c < k; ++c) {
    const auto bc = gen::random_rhs<double>(L.nrows, 60 + static_cast<int>(c));
    B.insert(B.end(), bc.begin(), bc.end());
  }
  std::vector<double> x(b.size());

  solver.solve(b.data(), x.data());
  solver.solve_many(B.data(), X.data(), k);
  const std::uint64_t news = allocations_in([&] {
    solver.solve(b.data(), x.data());
    solver.solve_many(B.data(), X.data(), k);
    solver.solve(b.data(), x.data());
  });
  EXPECT_EQ(news, 0u);
}

TEST_F(WarmSolveAlloc, CountingHookWorks) {
  // Sanity-check the instrumentation itself: an actual allocation inside the
  // armed window must be observed.
  const std::uint64_t news = allocations_in([] {
    std::vector<int>* v = new std::vector<int>(100);
    delete v;
  });
  EXPECT_GT(news, 0u);
}

}  // namespace
}  // namespace blocktri
