file(REMOVE_RECURSE
  "CMakeFiles/fig5_adaptive_heatmap.dir/fig5_adaptive_heatmap.cpp.o"
  "CMakeFiles/fig5_adaptive_heatmap.dir/fig5_adaptive_heatmap.cpp.o.d"
  "fig5_adaptive_heatmap"
  "fig5_adaptive_heatmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_adaptive_heatmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
