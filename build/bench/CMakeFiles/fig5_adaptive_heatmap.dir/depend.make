# Empty dependencies file for fig5_adaptive_heatmap.
# This may be replaced when dependencies are built.
