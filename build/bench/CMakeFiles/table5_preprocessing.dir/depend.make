# Empty dependencies file for table5_preprocessing.
# This may be replaced when dependencies are built.
