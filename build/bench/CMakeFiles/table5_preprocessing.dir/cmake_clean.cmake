file(REMOVE_RECURSE
  "CMakeFiles/table5_preprocessing.dir/table5_preprocessing.cpp.o"
  "CMakeFiles/table5_preprocessing.dir/table5_preprocessing.cpp.o.d"
  "table5_preprocessing"
  "table5_preprocessing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_preprocessing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
