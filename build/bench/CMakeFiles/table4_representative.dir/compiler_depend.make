# Empty compiler generated dependencies file for table4_representative.
# This may be replaced when dependencies are built.
