file(REMOVE_RECURSE
  "CMakeFiles/table4_representative.dir/table4_representative.cpp.o"
  "CMakeFiles/table4_representative.dir/table4_representative.cpp.o.d"
  "table4_representative"
  "table4_representative.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_representative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
