file(REMOVE_RECURSE
  "CMakeFiles/table1_2_traffic.dir/table1_2_traffic.cpp.o"
  "CMakeFiles/table1_2_traffic.dir/table1_2_traffic.cpp.o.d"
  "table1_2_traffic"
  "table1_2_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_2_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
