# Empty compiler generated dependencies file for table1_2_traffic.
# This may be replaced when dependencies are built.
