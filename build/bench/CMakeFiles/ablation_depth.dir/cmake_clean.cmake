file(REMOVE_RECURSE
  "CMakeFiles/ablation_depth.dir/ablation_depth.cpp.o"
  "CMakeFiles/ablation_depth.dir/ablation_depth.cpp.o.d"
  "ablation_depth"
  "ablation_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
