# Empty dependencies file for fig4_spmv_block.
# This may be replaced when dependencies are built.
