file(REMOVE_RECURSE
  "CMakeFiles/fig4_spmv_block.dir/fig4_spmv_block.cpp.o"
  "CMakeFiles/fig4_spmv_block.dir/fig4_spmv_block.cpp.o.d"
  "fig4_spmv_block"
  "fig4_spmv_block.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_spmv_block.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
