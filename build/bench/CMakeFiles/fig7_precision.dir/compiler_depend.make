# Empty compiler generated dependencies file for fig7_precision.
# This may be replaced when dependencies are built.
