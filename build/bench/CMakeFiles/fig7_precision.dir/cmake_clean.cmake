file(REMOVE_RECURSE
  "CMakeFiles/fig7_precision.dir/fig7_precision.cpp.o"
  "CMakeFiles/fig7_precision.dir/fig7_precision.cpp.o.d"
  "fig7_precision"
  "fig7_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
