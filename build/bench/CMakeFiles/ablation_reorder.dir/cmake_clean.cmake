file(REMOVE_RECURSE
  "CMakeFiles/ablation_reorder.dir/ablation_reorder.cpp.o"
  "CMakeFiles/ablation_reorder.dir/ablation_reorder.cpp.o.d"
  "ablation_reorder"
  "ablation_reorder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_reorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
