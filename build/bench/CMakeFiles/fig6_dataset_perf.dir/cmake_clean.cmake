file(REMOVE_RECURSE
  "CMakeFiles/fig6_dataset_perf.dir/fig6_dataset_perf.cpp.o"
  "CMakeFiles/fig6_dataset_perf.dir/fig6_dataset_perf.cpp.o.d"
  "fig6_dataset_perf"
  "fig6_dataset_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_dataset_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
