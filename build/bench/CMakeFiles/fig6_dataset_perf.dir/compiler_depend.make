# Empty compiler generated dependencies file for fig6_dataset_perf.
# This may be replaced when dependencies are built.
