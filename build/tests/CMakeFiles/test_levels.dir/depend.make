# Empty dependencies file for test_levels.
# This may be replaced when dependencies are built.
