file(REMOVE_RECURSE
  "CMakeFiles/test_sptrsv.dir/test_sptrsv.cpp.o"
  "CMakeFiles/test_sptrsv.dir/test_sptrsv.cpp.o.d"
  "test_sptrsv"
  "test_sptrsv.pdb"
  "test_sptrsv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sptrsv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
