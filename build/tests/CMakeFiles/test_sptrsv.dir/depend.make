# Empty dependencies file for test_sptrsv.
# This may be replaced when dependencies are built.
