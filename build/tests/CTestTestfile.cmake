# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_formats[1]_include.cmake")
include("/root/repo/build/tests/test_convert[1]_include.cmake")
include("/root/repo/build/tests/test_sparse_ops[1]_include.cmake")
include("/root/repo/build/tests/test_levels[1]_include.cmake")
include("/root/repo/build/tests/test_generators[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_spmv[1]_include.cmake")
include("/root/repo/build/tests/test_sptrsv[1]_include.cmake")
include("/root/repo/build/tests/test_plan[1]_include.cmake")
include("/root/repo/build/tests/test_adaptive[1]_include.cmake")
include("/root/repo/build/tests/test_solver[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
