file(REMOVE_RECURSE
  "CMakeFiles/blocktri_sptrsv.dir/cusparse_like.cpp.o"
  "CMakeFiles/blocktri_sptrsv.dir/cusparse_like.cpp.o.d"
  "CMakeFiles/blocktri_sptrsv.dir/diagonal.cpp.o"
  "CMakeFiles/blocktri_sptrsv.dir/diagonal.cpp.o.d"
  "CMakeFiles/blocktri_sptrsv.dir/levelset.cpp.o"
  "CMakeFiles/blocktri_sptrsv.dir/levelset.cpp.o.d"
  "CMakeFiles/blocktri_sptrsv.dir/serial.cpp.o"
  "CMakeFiles/blocktri_sptrsv.dir/serial.cpp.o.d"
  "CMakeFiles/blocktri_sptrsv.dir/syncfree.cpp.o"
  "CMakeFiles/blocktri_sptrsv.dir/syncfree.cpp.o.d"
  "CMakeFiles/blocktri_sptrsv.dir/upper.cpp.o"
  "CMakeFiles/blocktri_sptrsv.dir/upper.cpp.o.d"
  "libblocktri_sptrsv.a"
  "libblocktri_sptrsv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blocktri_sptrsv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
