
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sptrsv/cusparse_like.cpp" "src/sptrsv/CMakeFiles/blocktri_sptrsv.dir/cusparse_like.cpp.o" "gcc" "src/sptrsv/CMakeFiles/blocktri_sptrsv.dir/cusparse_like.cpp.o.d"
  "/root/repo/src/sptrsv/diagonal.cpp" "src/sptrsv/CMakeFiles/blocktri_sptrsv.dir/diagonal.cpp.o" "gcc" "src/sptrsv/CMakeFiles/blocktri_sptrsv.dir/diagonal.cpp.o.d"
  "/root/repo/src/sptrsv/levelset.cpp" "src/sptrsv/CMakeFiles/blocktri_sptrsv.dir/levelset.cpp.o" "gcc" "src/sptrsv/CMakeFiles/blocktri_sptrsv.dir/levelset.cpp.o.d"
  "/root/repo/src/sptrsv/serial.cpp" "src/sptrsv/CMakeFiles/blocktri_sptrsv.dir/serial.cpp.o" "gcc" "src/sptrsv/CMakeFiles/blocktri_sptrsv.dir/serial.cpp.o.d"
  "/root/repo/src/sptrsv/syncfree.cpp" "src/sptrsv/CMakeFiles/blocktri_sptrsv.dir/syncfree.cpp.o" "gcc" "src/sptrsv/CMakeFiles/blocktri_sptrsv.dir/syncfree.cpp.o.d"
  "/root/repo/src/sptrsv/upper.cpp" "src/sptrsv/CMakeFiles/blocktri_sptrsv.dir/upper.cpp.o" "gcc" "src/sptrsv/CMakeFiles/blocktri_sptrsv.dir/upper.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sparse/CMakeFiles/blocktri_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/blocktri_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/blocktri_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/blocktri_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
