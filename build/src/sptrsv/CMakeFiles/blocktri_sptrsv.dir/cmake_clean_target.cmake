file(REMOVE_RECURSE
  "libblocktri_sptrsv.a"
)
