# Empty dependencies file for blocktri_sptrsv.
# This may be replaced when dependencies are built.
