# Empty compiler generated dependencies file for blocktri_gen.
# This may be replaced when dependencies are built.
