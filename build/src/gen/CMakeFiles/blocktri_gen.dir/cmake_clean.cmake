file(REMOVE_RECURSE
  "CMakeFiles/blocktri_gen.dir/generators.cpp.o"
  "CMakeFiles/blocktri_gen.dir/generators.cpp.o.d"
  "CMakeFiles/blocktri_gen.dir/suite.cpp.o"
  "CMakeFiles/blocktri_gen.dir/suite.cpp.o.d"
  "libblocktri_gen.a"
  "libblocktri_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blocktri_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
