file(REMOVE_RECURSE
  "libblocktri_gen.a"
)
