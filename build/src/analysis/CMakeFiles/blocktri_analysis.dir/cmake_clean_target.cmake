file(REMOVE_RECURSE
  "libblocktri_analysis.a"
)
