# Empty dependencies file for blocktri_analysis.
# This may be replaced when dependencies are built.
