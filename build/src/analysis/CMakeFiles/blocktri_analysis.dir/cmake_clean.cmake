file(REMOVE_RECURSE
  "CMakeFiles/blocktri_analysis.dir/features.cpp.o"
  "CMakeFiles/blocktri_analysis.dir/features.cpp.o.d"
  "CMakeFiles/blocktri_analysis.dir/levels.cpp.o"
  "CMakeFiles/blocktri_analysis.dir/levels.cpp.o.d"
  "libblocktri_analysis.a"
  "libblocktri_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blocktri_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
