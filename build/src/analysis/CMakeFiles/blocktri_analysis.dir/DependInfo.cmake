
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/features.cpp" "src/analysis/CMakeFiles/blocktri_analysis.dir/features.cpp.o" "gcc" "src/analysis/CMakeFiles/blocktri_analysis.dir/features.cpp.o.d"
  "/root/repo/src/analysis/levels.cpp" "src/analysis/CMakeFiles/blocktri_analysis.dir/levels.cpp.o" "gcc" "src/analysis/CMakeFiles/blocktri_analysis.dir/levels.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sparse/CMakeFiles/blocktri_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/blocktri_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
