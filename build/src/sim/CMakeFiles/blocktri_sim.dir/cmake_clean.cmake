file(REMOVE_RECURSE
  "CMakeFiles/blocktri_sim.dir/cache.cpp.o"
  "CMakeFiles/blocktri_sim.dir/cache.cpp.o.d"
  "CMakeFiles/blocktri_sim.dir/kernel_sim.cpp.o"
  "CMakeFiles/blocktri_sim.dir/kernel_sim.cpp.o.d"
  "CMakeFiles/blocktri_sim.dir/machine.cpp.o"
  "CMakeFiles/blocktri_sim.dir/machine.cpp.o.d"
  "libblocktri_sim.a"
  "libblocktri_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blocktri_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
