# Empty compiler generated dependencies file for blocktri_sim.
# This may be replaced when dependencies are built.
