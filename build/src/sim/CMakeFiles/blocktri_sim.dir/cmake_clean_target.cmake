file(REMOVE_RECURSE
  "libblocktri_sim.a"
)
