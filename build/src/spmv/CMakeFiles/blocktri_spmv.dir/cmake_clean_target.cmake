file(REMOVE_RECURSE
  "libblocktri_spmv.a"
)
