file(REMOVE_RECURSE
  "CMakeFiles/blocktri_spmv.dir/kernels.cpp.o"
  "CMakeFiles/blocktri_spmv.dir/kernels.cpp.o.d"
  "libblocktri_spmv.a"
  "libblocktri_spmv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blocktri_spmv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
