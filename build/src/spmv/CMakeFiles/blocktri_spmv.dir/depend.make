# Empty dependencies file for blocktri_spmv.
# This may be replaced when dependencies are built.
