
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sparse/convert.cpp" "src/sparse/CMakeFiles/blocktri_sparse.dir/convert.cpp.o" "gcc" "src/sparse/CMakeFiles/blocktri_sparse.dir/convert.cpp.o.d"
  "/root/repo/src/sparse/dense.cpp" "src/sparse/CMakeFiles/blocktri_sparse.dir/dense.cpp.o" "gcc" "src/sparse/CMakeFiles/blocktri_sparse.dir/dense.cpp.o.d"
  "/root/repo/src/sparse/formats.cpp" "src/sparse/CMakeFiles/blocktri_sparse.dir/formats.cpp.o" "gcc" "src/sparse/CMakeFiles/blocktri_sparse.dir/formats.cpp.o.d"
  "/root/repo/src/sparse/mm_io.cpp" "src/sparse/CMakeFiles/blocktri_sparse.dir/mm_io.cpp.o" "gcc" "src/sparse/CMakeFiles/blocktri_sparse.dir/mm_io.cpp.o.d"
  "/root/repo/src/sparse/permute.cpp" "src/sparse/CMakeFiles/blocktri_sparse.dir/permute.cpp.o" "gcc" "src/sparse/CMakeFiles/blocktri_sparse.dir/permute.cpp.o.d"
  "/root/repo/src/sparse/triangular.cpp" "src/sparse/CMakeFiles/blocktri_sparse.dir/triangular.cpp.o" "gcc" "src/sparse/CMakeFiles/blocktri_sparse.dir/triangular.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/blocktri_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
