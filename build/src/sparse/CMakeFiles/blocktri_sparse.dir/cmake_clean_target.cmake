file(REMOVE_RECURSE
  "libblocktri_sparse.a"
)
