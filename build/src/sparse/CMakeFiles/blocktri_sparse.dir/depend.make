# Empty dependencies file for blocktri_sparse.
# This may be replaced when dependencies are built.
