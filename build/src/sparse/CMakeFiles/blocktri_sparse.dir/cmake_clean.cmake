file(REMOVE_RECURSE
  "CMakeFiles/blocktri_sparse.dir/convert.cpp.o"
  "CMakeFiles/blocktri_sparse.dir/convert.cpp.o.d"
  "CMakeFiles/blocktri_sparse.dir/dense.cpp.o"
  "CMakeFiles/blocktri_sparse.dir/dense.cpp.o.d"
  "CMakeFiles/blocktri_sparse.dir/formats.cpp.o"
  "CMakeFiles/blocktri_sparse.dir/formats.cpp.o.d"
  "CMakeFiles/blocktri_sparse.dir/mm_io.cpp.o"
  "CMakeFiles/blocktri_sparse.dir/mm_io.cpp.o.d"
  "CMakeFiles/blocktri_sparse.dir/permute.cpp.o"
  "CMakeFiles/blocktri_sparse.dir/permute.cpp.o.d"
  "CMakeFiles/blocktri_sparse.dir/triangular.cpp.o"
  "CMakeFiles/blocktri_sparse.dir/triangular.cpp.o.d"
  "libblocktri_sparse.a"
  "libblocktri_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blocktri_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
