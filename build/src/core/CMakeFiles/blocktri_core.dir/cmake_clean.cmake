file(REMOVE_RECURSE
  "CMakeFiles/blocktri_core.dir/adaptive.cpp.o"
  "CMakeFiles/blocktri_core.dir/adaptive.cpp.o.d"
  "CMakeFiles/blocktri_core.dir/plan.cpp.o"
  "CMakeFiles/blocktri_core.dir/plan.cpp.o.d"
  "CMakeFiles/blocktri_core.dir/solver.cpp.o"
  "CMakeFiles/blocktri_core.dir/solver.cpp.o.d"
  "libblocktri_core.a"
  "libblocktri_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blocktri_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
