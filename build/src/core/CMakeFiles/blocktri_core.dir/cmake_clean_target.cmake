file(REMOVE_RECURSE
  "libblocktri_core.a"
)
