# Empty compiler generated dependencies file for blocktri_core.
# This may be replaced when dependencies are built.
