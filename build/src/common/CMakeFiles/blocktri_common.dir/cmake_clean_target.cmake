file(REMOVE_RECURSE
  "libblocktri_common.a"
)
