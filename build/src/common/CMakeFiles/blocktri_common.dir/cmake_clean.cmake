file(REMOVE_RECURSE
  "CMakeFiles/blocktri_common.dir/cli.cpp.o"
  "CMakeFiles/blocktri_common.dir/cli.cpp.o.d"
  "CMakeFiles/blocktri_common.dir/prefix.cpp.o"
  "CMakeFiles/blocktri_common.dir/prefix.cpp.o.d"
  "CMakeFiles/blocktri_common.dir/rng.cpp.o"
  "CMakeFiles/blocktri_common.dir/rng.cpp.o.d"
  "CMakeFiles/blocktri_common.dir/table.cpp.o"
  "CMakeFiles/blocktri_common.dir/table.cpp.o.d"
  "libblocktri_common.a"
  "libblocktri_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blocktri_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
