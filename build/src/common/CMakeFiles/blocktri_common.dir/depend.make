# Empty dependencies file for blocktri_common.
# This may be replaced when dependencies are built.
