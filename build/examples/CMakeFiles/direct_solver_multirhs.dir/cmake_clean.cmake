file(REMOVE_RECURSE
  "CMakeFiles/direct_solver_multirhs.dir/direct_solver_multirhs.cpp.o"
  "CMakeFiles/direct_solver_multirhs.dir/direct_solver_multirhs.cpp.o.d"
  "direct_solver_multirhs"
  "direct_solver_multirhs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/direct_solver_multirhs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
