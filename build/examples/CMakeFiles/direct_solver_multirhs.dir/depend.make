# Empty dependencies file for direct_solver_multirhs.
# This may be replaced when dependencies are built.
