# Empty dependencies file for adaptive_explorer.
# This may be replaced when dependencies are built.
