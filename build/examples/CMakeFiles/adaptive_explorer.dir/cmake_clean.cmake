file(REMOVE_RECURSE
  "CMakeFiles/adaptive_explorer.dir/adaptive_explorer.cpp.o"
  "CMakeFiles/adaptive_explorer.dir/adaptive_explorer.cpp.o.d"
  "adaptive_explorer"
  "adaptive_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
