file(REMOVE_RECURSE
  "CMakeFiles/gauss_seidel_iterative.dir/gauss_seidel_iterative.cpp.o"
  "CMakeFiles/gauss_seidel_iterative.dir/gauss_seidel_iterative.cpp.o.d"
  "gauss_seidel_iterative"
  "gauss_seidel_iterative.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gauss_seidel_iterative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
