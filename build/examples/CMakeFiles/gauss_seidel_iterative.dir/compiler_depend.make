# Empty compiler generated dependencies file for gauss_seidel_iterative.
# This may be replaced when dependencies are built.
